#include "src/routing/offline_butterfly.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <vector>

#include "src/routing/benes.hpp"
#include "src/routing/decompose.hpp"

namespace upn {

namespace {

/// Tracks one packet through the three phases.
struct Tracked {
  NodeId src;
  NodeId dst;
  std::uint32_t batch = 0;  ///< Benes batch index (phase 2)
};

/// Pipelined column traffic: moves every queued packet one level toward
/// level 0 (gather) or toward its destination level (scatter), one packet
/// per directed straight edge per step.  Appends moves and returns the step
/// at which the phase completed.
std::uint32_t run_column_phase(const ButterflyLayout& layout, std::vector<Tracked>& packets,
                               std::vector<NodeId>& position, bool gather,
                               std::uint32_t start_step, std::vector<ScheduledMove>& moves) {
  const std::uint32_t levels = layout.levels();
  // Per-node FIFO of packet ids waiting to move through this phase.
  std::vector<std::deque<std::uint32_t>> queue(layout.num_nodes());
  std::uint32_t pending = 0;
  for (std::uint32_t p = 0; p < packets.size(); ++p) {
    const std::uint32_t target_level =
        gather ? 0u : layout.level_of(packets[p].dst);
    if (layout.level_of(position[p]) != target_level) {
      queue[position[p]].push_back(p);
      ++pending;
    }
  }
  std::uint32_t step = start_step;
  while (pending > 0) {
    // Collect this step's moves first, then apply, so a packet moves at most
    // one level per step.
    std::vector<ScheduledMove> this_step;
    for (std::uint32_t level = 0; level < levels; ++level) {
      for (std::uint32_t row = 0; row < layout.rows(); ++row) {
        const NodeId node = layout.id(level, row);
        if (queue[node].empty()) continue;
        const std::uint32_t next_level = gather ? level - 1 : level + 1;
        const NodeId next = layout.id(next_level, row);
        const std::uint32_t p = queue[node].front();
        queue[node].pop_front();
        this_step.push_back(ScheduledMove{step, node, next, p});
      }
    }
    for (const ScheduledMove& move : this_step) {
      position[move.packet] = move.to;
      const std::uint32_t target_level =
          gather ? 0u : layout.level_of(packets[move.packet].dst);
      if (layout.level_of(move.to) == target_level) {
        --pending;
      } else {
        queue[move.to].push_back(move.packet);
      }
      moves.push_back(move);
    }
    ++step;
  }
  return step;
}

}  // namespace

OfflineSchedule route_relation_offline(std::uint32_t dimension, const HhProblem& problem) {
  const ButterflyLayout layout{dimension, /*wrapped=*/false};
  if (problem.num_nodes() != layout.num_nodes()) {
    throw std::invalid_argument{"route_relation_offline: demand node count mismatch"};
  }
  OfflineSchedule schedule;
  schedule.layout = layout;

  std::vector<Tracked> packets;
  packets.reserve(problem.size());
  std::vector<NodeId> position;
  position.reserve(problem.size());
  for (const Demand& d : problem.demands()) {
    packets.push_back(Tracked{d.src, d.dst});
    position.push_back(d.src);
  }

  // ---- Phase 1: gather every packet to level 0 of its source column. ----
  std::uint32_t step =
      run_column_phase(layout, packets, position, /*gather=*/true, 0, schedule.moves);

  // ---- Phase 2: Benes-route the row-to-row relation, pipelined. ----
  // Row relation: one demand per packet.
  HhProblem row_relation{layout.rows()};
  for (const Tracked& p : packets) {
    row_relation.add(layout.row_of(p.src), layout.row_of(p.dst));
  }
  const auto rounds = decompose_into_permutations(row_relation);
  schedule.num_batches = static_cast<std::uint32_t>(rounds.size());

  // Assign concrete packets to rounds: bucket packets by (src row, dst row).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<std::uint32_t>> buckets;
  for (std::uint32_t p = 0; p < packets.size(); ++p) {
    buckets[{layout.row_of(packets[p].src), layout.row_of(packets[p].dst)}].push_back(p);
  }
  // batch_rows[b]: for each participating packet, its Benes path.
  const std::uint32_t d = dimension;
  const std::uint32_t rows = layout.rows();
  for (std::uint32_t b = 0; b < rounds.size(); ++b) {
    // Pad the partial permutation to a full one.
    std::vector<std::uint32_t> perm(rows, 0xffffffffu);
    std::vector<char> dst_used(rows, 0);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> packet_of_row(rows,
                                                                       {0xffffffffu, 0u});
    for (const Demand& demand : rounds[b]) {
      perm[demand.src] = demand.dst;
      dst_used[demand.dst] = 1;
      auto& bucket = buckets[{demand.src, demand.dst}];
      packet_of_row[demand.src] = {bucket.front(), 1u};
      bucket.pop_front();
    }
    std::uint32_t free_dst = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
      if (perm[r] != 0xffffffffu) continue;
      while (dst_used[free_dst]) ++free_dst;
      perm[r] = free_dst;
      dst_used[free_dst] = 1;
    }
    const BenesPaths paths = benes_route(perm);
    // Batch b's stage s runs at global step `step + b + s`.  Map Benes level
    // onto butterfly level: lambda(s) = s for s <= d, 2d - s beyond.
    for (std::uint32_t r = 0; r < rows; ++r) {
      const auto [packet_id, real] = packet_of_row[r];
      if (!real) continue;
      for (std::uint32_t s = 0; s < 2 * d; ++s) {
        const std::uint32_t level_from = s <= d ? s : 2 * d - s;
        const std::uint32_t level_to = (s + 1) <= d ? (s + 1) : 2 * d - (s + 1);
        schedule.moves.push_back(
            ScheduledMove{step + b + s, layout.id(level_from, paths.rows[r][s]),
                          layout.id(level_to, paths.rows[r][s + 1]), packet_id});
      }
      position[packet_id] = layout.id(0, perm[r]);
    }
  }
  if (!rounds.empty()) {
    step += static_cast<std::uint32_t>(rounds.size()) - 1 + 2 * d;
  }

  // ---- Phase 3: scatter packets up their destination columns. ----
  step = run_column_phase(layout, packets, position, /*gather=*/false, step, schedule.moves);

  schedule.num_steps = step;
  std::stable_sort(schedule.moves.begin(), schedule.moves.end(),
                   [](const ScheduledMove& a, const ScheduledMove& b) {
                     return a.step < b.step;
                   });
  return schedule;
}

bool validate_schedule(const OfflineSchedule& schedule, const HhProblem& problem) {
  const ButterflyLayout& layout = schedule.layout;
  std::vector<NodeId> position;
  position.reserve(problem.size());
  for (const Demand& d : problem.demands()) position.push_back(d.src);

  // Group moves by step (they are sorted).
  std::size_t i = 0;
  std::map<std::uint64_t, std::uint32_t> link_load;  // (from, to) within a step
  while (i < schedule.moves.size()) {
    const std::uint32_t step = schedule.moves[i].step;
    link_load.clear();
    for (; i < schedule.moves.size() && schedule.moves[i].step == step; ++i) {
      const ScheduledMove& move = schedule.moves[i];
      if (move.packet >= position.size()) return false;
      if (position[move.packet] != move.from) return false;  // teleport
      // Butterfly edge check: adjacent levels, row unchanged or flipping the
      // lower level's bit.
      const std::uint32_t lf = layout.level_of(move.from);
      const std::uint32_t lt = layout.level_of(move.to);
      if (lf != lt + 1 && lt != lf + 1) return false;
      const std::uint32_t low = std::min(lf, lt);
      const std::uint32_t delta = layout.row_of(move.from) ^ layout.row_of(move.to);
      if (delta != 0 && delta != (1u << low)) return false;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(move.from) << 32) | move.to;
      if (++link_load[key] > 1) return false;  // directed link overload
      position[move.packet] = move.to;
    }
  }
  for (std::size_t p = 0; p < position.size(); ++p) {
    if (position[p] != problem.demands()[p].dst) return false;
  }
  return true;
}

}  // namespace upn
