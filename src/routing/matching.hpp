// Hopcroft-Karp maximum bipartite matching.
//
// Used by the h-relation decomposition (decompose.hpp) to peel a perfect
// matching off an odd-regular demand multigraph, and independently useful as
// a substrate (e.g., verifying the per-step transfer matchings of the
// single-port router).
#pragma once

#include <cstdint>
#include <vector>

namespace upn {

/// A bipartite multigraph with `left` + `right` vertices; edges are
/// (left vertex, right vertex) pairs, duplicates allowed.
class BipartiteGraph {
 public:
  BipartiteGraph(std::uint32_t left, std::uint32_t right) : left_(left), right_(right) {}

  void add_edge(std::uint32_t l, std::uint32_t r);

  [[nodiscard]] std::uint32_t left_size() const noexcept { return left_; }
  [[nodiscard]] std::uint32_t right_size() const noexcept { return right_; }
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges()
      const noexcept {
    return edges_;
  }

 private:
  std::uint32_t left_;
  std::uint32_t right_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

/// Result: match_left[l] = matched right vertex or kUnmatched.
struct MatchingResult {
  static constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match_left;
  std::vector<std::uint32_t> match_right;
  std::uint32_t size = 0;
};

/// Maximum matching in O(E sqrt(V)).
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& graph);

}  // namespace upn
