#include "src/routing/schedule_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/util/contracts.hpp"

namespace upn {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_path_schedule: line " + std::to_string(line) + ": " + what};
}

std::uint32_t parse_u32(const std::string& token, std::size_t line_no, const char* what) {
  if (token.empty() || token.size() > 10) fail(line_no, std::string{what} + ": bad field");
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail(line_no, std::string{what} + ": not a non-negative integer ('" + token + "')");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    fail(line_no, std::string{what} + ": overflows uint32_t");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

void write_path_schedule(std::ostream& os, const PathSchedule& schedule,
                         std::uint32_t num_packets) {
  os << "upn-schedule 1 " << num_packets << ' ' << schedule.congestion << ' '
     << schedule.dilation << ' ' << schedule.makespan << '\n';
  for (const auto& step : schedule.moves) {
    os << "step\n";
    for (const auto& [packet, from, to] : step) {
      os << "M " << packet << ' ' << from << ' ' << to << '\n';
    }
  }
}

StoredPathSchedule read_path_schedule(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  std::istringstream header{line};
  std::string magic, version, p_tok, c_tok, d_tok, mk_tok, extra;
  if (!(header >> magic >> version >> p_tok >> c_tok >> d_tok >> mk_tok) ||
      (header >> extra) || magic != "upn-schedule" || version != "1") {
    fail(line_no, "bad header (expected 'upn-schedule 1 <packets> <C> <D> <makespan>')");
  }
  StoredPathSchedule stored;
  stored.num_packets = parse_u32(p_tok, line_no, "packet count");
  stored.schedule.congestion = parse_u32(c_tok, line_no, "congestion");
  stored.schedule.dilation = parse_u32(d_tok, line_no, "dilation");
  stored.schedule.makespan = parse_u32(mk_tok, line_no, "makespan");
  if (stored.num_packets > kMaxScheduleDimension ||
      stored.schedule.makespan > kMaxScheduleDimension) {
    fail(line_no, "header count exceeds limit");
  }
  bool in_step = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    if (kind == "step") {
      std::string trailing;
      if (fields >> trailing) fail(line_no, "trailing garbage after 'step'");
      stored.schedule.moves.emplace_back();
      in_step = true;
      continue;
    }
    if (kind != "M") fail(line_no, "unknown record kind '" + kind + "'");
    if (!in_step) fail(line_no, "move before first 'step'");
    std::string pk, from, to, trailing;
    if (!(fields >> pk >> from >> to)) fail(line_no, "malformed move");
    if (fields >> trailing) fail(line_no, "trailing garbage");
    std::array<std::uint32_t, 3> move{};
    move[0] = parse_u32(pk, line_no, "packet");
    move[1] = parse_u32(from, line_no, "from");
    move[2] = parse_u32(to, line_no, "to");
    if (move[0] >= stored.num_packets) fail(line_no, "packet id out of range");
    if (move[1] == move[2]) fail(line_no, "move must cross a link (from != to)");
    stored.schedule.moves.back().push_back(move);
    ++stored.schedule.total_moves;
  }
  if (stored.schedule.moves.size() != stored.schedule.makespan) {
    fail(line_no + 1, "step count does not match the declared makespan");
  }
  UPN_ENSURE(stored.schedule.moves.size() == stored.schedule.makespan,
             "parsed schedule must match its header");
  return stored;
}

}  // namespace upn
