// Textual (de)serialization of precomputed path schedules.
//
// Format (line-oriented, whitespace-separated, mirroring pebble/io):
//   upn-schedule 1 <num_packets> <congestion> <dilation> <makespan>
//   step
//   M <packet> <from> <to>
//   ...
// One `step` line per schedule step.  The header declares the congestion
// (max uses of one directed link) and dilation (max per-packet hops) the
// producer claims for the whole schedule; tools/upn_lint re-derives both
// from the moves WITHOUT replaying the schedule on a host and rejects files
// that exceed their declaration.  This is the static well-formedness story
// of Baral et al.'s connection schedules applied to our LMR-style greedy.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "src/routing/path_schedule.hpp"

namespace upn {

/// Hostile-input cap on packets / steps (same rationale as pebble/io caps).
inline constexpr std::uint32_t kMaxScheduleDimension = 1u << 26;

/// A schedule as stored on disk: the moves plus the declared packet count.
struct StoredPathSchedule {
  PathSchedule schedule;           ///< congestion/dilation as DECLARED on disk
  std::uint32_t num_packets = 0;
};

void write_path_schedule(std::ostream& os, const PathSchedule& schedule,
                         std::uint32_t num_packets);

/// Parses a schedule; throws std::runtime_error with a line number on
/// malformed input (bad header, unknown records, packet ids >= num_packets,
/// moves before the first step).  Declared congestion/dilation bounds are
/// parsed but NOT verified -- that is the linter's job.
[[nodiscard]] StoredPathSchedule read_path_schedule(std::istream& is);

}  // namespace upn
