// Decomposition of h-relations into (partial) permutations.
//
// Section 2: "the ceil(n/m)-ceil(n/m) routing problem ... can be solved by
// routing O(n/m) permutations that depend on G only, and, therefore, are
// known in advance."  The underlying combinatorics is Koenig's edge-coloring
// theorem: an h-regular bipartite multigraph decomposes into exactly h
// perfect matchings.  We realize it constructively:
//
//   1. pad the demand multigraph (sources x destinations) to h-regular by
//      adding dummy demands between deficient nodes;
//   2. while h is even, split the multigraph into two (h/2)-regular halves
//      along Eulerian circuits;
//   3. when h is odd, peel one perfect matching with Hopcroft-Karp.
//
// Each resulting round is a partial permutation: no node sources or receives
// more than one (real) packet.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/hh_problem.hpp"

namespace upn {

/// One round: demands with pairwise-distinct sources and pairwise-distinct
/// destinations (dummy padding demands are dropped).
using PermutationRound = std::vector<Demand>;

/// Decomposes `problem` into at most h(problem) rounds (exactly h after
/// padding).  Every original demand appears in exactly one round.
[[nodiscard]] std::vector<PermutationRound> decompose_into_permutations(
    const HhProblem& problem);

/// Validation helper: true iff the round has no repeated source and no
/// repeated destination.
[[nodiscard]] bool is_partial_permutation(const PermutationRound& round,
                                          std::uint32_t num_nodes);

}  // namespace upn
