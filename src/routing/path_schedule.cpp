#include "src/routing/path_schedule.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/routing/policies.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

PathSchedule schedule_paths(const Graph& host, const HhProblem& problem) {
  for (const Demand& demand : problem.demands()) {
    UPN_REQUIRE(demand.src < host.num_nodes() && demand.dst < host.num_nodes(),
                "schedule_paths: demand endpoints must be host nodes");
  }
  DistanceOracle oracle{host};
  PathSchedule schedule;

  // Fix one shortest path per demand.
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(problem.size());
  std::map<std::uint64_t, std::uint32_t> link_load;
  std::uint32_t packet_id = 0;
  for (const Demand& demand : problem.demands()) {
    std::vector<NodeId> path{demand.src};
    NodeId at = demand.src;
    while (at != demand.dst) {
      const NodeId next = greedy_next_hop(host, oracle, at, demand.dst, packet_id);
      ++link_load[link_key(at, next)];
      path.push_back(next);
      at = next;
    }
    schedule.dilation =
        std::max(schedule.dilation, static_cast<std::uint32_t>(path.size() - 1));
    paths.push_back(std::move(path));
    ++packet_id;
  }
  for (const auto& [key, load] : link_load) {
    schedule.congestion = std::max(schedule.congestion, load);
  }

  // Greedy farthest-to-go-first link scheduling.
  std::vector<std::uint32_t> position(paths.size(), 0);  // index into path
  std::uint32_t remaining = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    if (paths[p].size() > 1) ++remaining;
  }
  while (remaining > 0) {
    // Requests per directed link, keeping only the farthest-to-go packet.
    std::map<std::uint64_t, std::uint32_t> winner;  // link -> packet
    auto residual = [&](std::uint32_t p) {
      return static_cast<std::uint32_t>(paths[p].size() - 1) - position[p];
    };
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      if (residual(p) == 0) continue;
      const std::uint64_t key = link_key(paths[p][position[p]], paths[p][position[p] + 1]);
      const auto it = winner.find(key);
      if (it == winner.end() || residual(p) > residual(it->second)) {
        winner[key] = p;
      }
    }
    std::vector<std::array<std::uint32_t, 3>> step_moves;
    step_moves.reserve(winner.size());
    for (const auto& [key, p] : winner) {
      step_moves.push_back({p, paths[p][position[p]], paths[p][position[p] + 1]});
      ++position[p];
      if (residual(p) == 0) --remaining;
      ++schedule.total_moves;
    }
    schedule.moves.push_back(std::move(step_moves));
    ++schedule.makespan;
    // Trivial scheduling achieves C*D; the greedy must never do worse (the
    // slack absorbs rounding on degenerate one-packet instances).
    UPN_INVARIANT(schedule.makespan <= (schedule.congestion + 1u) * (schedule.dilation + 1u) + 8u,
                  "schedule_paths: exceeded the C*D safety bound");
  }
  UPN_ENSURE(schedule.makespan >= schedule.dilation,
             "a packet moves at most one hop per step, so makespan >= dilation");
  UPN_ENSURE(schedule.makespan >= schedule.congestion,
             "a link carries one packet per step, so makespan >= congestion");
  UPN_ENSURE(schedule.moves.size() == schedule.makespan,
             "one move list per schedule step");
  return schedule;
}

bool validate_path_schedule(const Graph& host, const HhProblem& problem,
                            const PathSchedule& schedule) {
  std::vector<NodeId> at;
  at.reserve(problem.size());
  for (const Demand& d : problem.demands()) at.push_back(d.src);
  for (const auto& step : schedule.moves) {
    std::map<std::uint64_t, int> used;
    for (const auto& [packet, from, to] : step) {
      if (packet >= at.size()) return false;
      if (at[packet] != from) return false;
      if (!host.has_edge(from, to)) return false;
      if (++used[link_key(from, to)] > 1) return false;
      at[packet] = to;
    }
  }
  for (std::size_t p = 0; p < at.size(); ++p) {
    if (at[p] != problem.demands()[p].dst) return false;
  }
  return true;
}

}  // namespace upn
