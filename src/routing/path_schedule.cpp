#include "src/routing/path_schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/routing/policies.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

PathSchedule schedule_paths(const Graph& host, const HhProblem& problem) {
  for (const Demand& demand : problem.demands()) {
    UPN_REQUIRE(demand.src < host.num_nodes() && demand.dst < host.num_nodes(),
                "schedule_paths: demand endpoints must be host nodes");
  }
  DistanceOracle oracle{host};
  PathSchedule schedule;

  // Fix one shortest path per demand.  Link loads are counted flat (one key
  // per traversed link, sort + run length) instead of through a node-per-key
  // tree -- this is an upn_analyze hot-path module.
  std::vector<std::vector<NodeId>> paths;
  paths.reserve(problem.size());
  std::vector<std::uint64_t> traversed_links;
  std::uint32_t packet_id = 0;
  for (const Demand& demand : problem.demands()) {
    std::vector<NodeId> path{demand.src};
    NodeId at = demand.src;
    while (at != demand.dst) {
      const NodeId next = greedy_next_hop(host, oracle, at, demand.dst, packet_id);
      traversed_links.push_back(link_key(at, next));
      path.push_back(next);
      at = next;
    }
    schedule.dilation =
        std::max(schedule.dilation, static_cast<std::uint32_t>(path.size() - 1));
    paths.push_back(std::move(path));
    ++packet_id;
  }
  std::sort(traversed_links.begin(), traversed_links.end());
  for (std::size_t i = 0; i < traversed_links.size();) {
    std::size_t j = i;
    while (j < traversed_links.size() && traversed_links[j] == traversed_links[i]) ++j;
    schedule.congestion = std::max(schedule.congestion, static_cast<std::uint32_t>(j - i));
    i = j;
  }

  // Greedy farthest-to-go-first link scheduling.
  std::vector<std::uint32_t> position(paths.size(), 0);  // index into path
  std::uint32_t remaining = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    if (paths[p].size() > 1) ++remaining;
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> requests;  // (link, packet)
  while (remaining > 0) {
    // Requests per directed link; the farthest-to-go packet wins each link
    // (ties to the lowest packet id).  Sorting by (link, -residual, packet)
    // and sweeping the first entry of each link group selects exactly what
    // the old link->winner tree did, in the same ascending-link order.
    auto residual = [&](std::uint32_t p) {
      return static_cast<std::uint32_t>(paths[p].size() - 1) - position[p];
    };
    requests.clear();
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      if (residual(p) == 0) continue;
      requests.emplace_back(link_key(paths[p][position[p]], paths[p][position[p] + 1]), p);
    }
    std::sort(requests.begin(), requests.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                if (residual(a.second) != residual(b.second)) {
                  return residual(a.second) > residual(b.second);
                }
                return a.second < b.second;
              });
    std::vector<std::array<std::uint32_t, 3>> step_moves;
    for (std::size_t i = 0; i < requests.size();) {
      const std::uint64_t key = requests[i].first;
      const std::uint32_t p = requests[i].second;
      while (i < requests.size() && requests[i].first == key) ++i;
      step_moves.push_back({p, paths[p][position[p]], paths[p][position[p] + 1]});
      ++position[p];
      if (residual(p) == 0) --remaining;
      ++schedule.total_moves;
    }
    schedule.moves.push_back(std::move(step_moves));
    ++schedule.makespan;
    // Trivial scheduling achieves C*D; the greedy must never do worse (the
    // slack absorbs rounding on degenerate one-packet instances).
    UPN_INVARIANT(schedule.makespan <= (schedule.congestion + 1u) * (schedule.dilation + 1u) + 8u,
                  "schedule_paths: exceeded the C*D safety bound");
  }
  UPN_ENSURE(schedule.makespan >= schedule.dilation,
             "a packet moves at most one hop per step, so makespan >= dilation");
  UPN_ENSURE(schedule.makespan >= schedule.congestion,
             "a link carries one packet per step, so makespan >= congestion");
  UPN_ENSURE(schedule.moves.size() == schedule.makespan,
             "one move list per schedule step");
  return schedule;
}

bool validate_path_schedule(const Graph& host, const HhProblem& problem,  // upn-analyze-waive(hotpath-unchecked-entry: this IS the validator; every input is legal and yields a verdict)
                            const PathSchedule& schedule) {
  std::vector<NodeId> at;
  at.reserve(problem.size());
  for (const Demand& d : problem.demands()) at.push_back(d.src);
  std::vector<std::uint64_t> used;
  for (const auto& step : schedule.moves) {
    used.clear();
    for (const auto& [packet, from, to] : step) {
      if (packet >= at.size()) return false;
      if (at[packet] != from) return false;
      if (!host.has_edge(from, to)) return false;
      used.push_back(link_key(from, to));
      at[packet] = to;
    }
    // One packet per directed link per step.
    std::sort(used.begin(), used.end());
    if (std::adjacent_find(used.begin(), used.end()) != used.end()) return false;
  }
  for (std::size_t p = 0; p < at.size(); ++p) {
    if (at[p] != problem.demands()[p].dst) return false;
  }
  return true;
}

}  // namespace upn
