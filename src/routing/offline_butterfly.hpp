// Off-line h-relation routing on the unwrapped butterfly in O(h log m) steps.
//
// This is the constructive heart of the paper's upper bound: "Because the
// guest has constant degree, the ceil(n/m)-ceil(n/m) routing problem ... can
// be solved by routing O(n/m) permutations that ... are known in advance.
// The off-line routing problem can be solved in time O(log m) [Waksman]."
//
// Given any h-relation on the (d+1) 2^d butterfly nodes, we build an explicit
// transfer schedule in three phases:
//
//   1. GATHER:  every packet rides its column's straight edges down to
//               level 0 (pipelined; O(h d) steps for column load h(d+1)).
//   2. BENES:   the demands, now a row-to-row relation with at most h(d+1)
//               packets per row on either side, are decomposed into at most
//               h(d+1) partial row permutations (decompose.hpp), each padded
//               to a full permutation and routed along node-disjoint Benes
//               paths (benes.hpp) mapped onto butterfly levels
//               0,1,...,d,d-1,...,0.  Batches are pipelined one step apart:
//               at any instant, distinct batches occupy distinct Benes
//               levels, and the forward/backward sweeps that share a
//               butterfly level travel over oppositely-directed links, so
//               the schedule never exceeds one packet per directed link per
//               step.  Cost: 2d + (#batches) steps.
//   3. SCATTER: packets ride their destination column's straight edges up
//               from level 0 to their target level (pipelined).
//
// Total: O(h d) = O(h log m) steps, matching the corollary to Theorem 2.1.
// The schedule is explicit and machine-validated (validate_schedule).
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/hh_problem.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/graph.hpp"

namespace upn {

/// One scheduled hop of one packet.
struct ScheduledMove {
  std::uint32_t step = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t packet = 0;  ///< index into the demand list
};

/// A complete off-line schedule for a demand list on a butterfly host.
struct OfflineSchedule {
  ButterflyLayout layout;
  std::uint32_t num_steps = 0;
  std::vector<ScheduledMove> moves;   ///< sorted by step
  std::uint32_t num_batches = 0;      ///< Benes batches used (diagnostics)
};

/// Schedules an arbitrary relation (demand list) on the dimension-d
/// unwrapped butterfly.  Demands address butterfly node ids (ButterflyLayout
/// numbering).  Throws if a demand is out of range.
[[nodiscard]] OfflineSchedule route_relation_offline(std::uint32_t dimension,
                                                     const HhProblem& problem);

/// Replays the schedule and checks: every move follows a butterfly edge from
/// the packet's current position; no directed link carries two packets in
/// one step; every packet ends at its destination.
[[nodiscard]] bool validate_schedule(const OfflineSchedule& schedule,
                                     const HhProblem& problem);

}  // namespace upn
