// Deterministic oblivious bit-fixing routing on the unwrapped butterfly.
//
// The classic scheme: a packet at (level, row) headed for (level', row')
//   phase 0: rides straight edges down to level 0;
//   phase 1: ascends levels 0..d, taking the cross edge at level l iff bit
//            l of its current row differs from the destination row;
//   phase 2: rides straight edges from level d back to the target level.
// Paths have length <= 2d + d, are fixed by (source, destination) only
// (oblivious), and need no distance oracle.  Borodin-Hopcroft-style theory
// (and [10, 17] cited in Section 1) says such deterministic oblivious
// schemes must have bad permutations; the ROUTE bench measures exactly that
// on bit-reversal and transpose patterns, where Valiant's randomization
// wins.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/router.hpp"
#include "src/topology/butterfly.hpp"

namespace upn {

class ButterflyBitfixPolicy final : public RoutingPolicy {
 public:
  explicit ButterflyBitfixPolicy(std::uint32_t dimension) : layout_{dimension, false} {}

  void prepare(const Graph& graph, std::vector<Packet>& packets) override;
  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "bitfix"; }

 private:
  ButterflyLayout layout_;
};

}  // namespace upn
