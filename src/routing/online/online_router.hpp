// Online adaptive routing under live churn: the BATMAN-derived regime.
//
// Every other routing layer in this repository is offline -- Benes switch
// settings, path schedules, butterfly schedules, even the fault-aware
// router's detours are computed from an omniscient view of the live
// subgraph.  OnlineRouter is the opposite discipline, after serval-dna's
// overlay router (SNIPPETS.md): host nodes know NOTHING but what link-local
// announcement traffic tells them.  Each protocol round, every node whose
// seeded hello timer fires broadcasts a bandwidth-capped announcement
// (itself plus its best known routes) to its live neighbors; receivers fold
// the announcements into per-node route tables (route_table.hpp) under the
// freshness-first DSDV rule; entries that stop being refreshed expire.
// Link death is DETECTED by silence and repaired routes are re-learned from
// new announcements, so the data plane keeps delivering while a FaultPlan
// kills and heals links mid-run -- degrading gracefully (bounded stretch,
// retries with seeded jittered backoff, a step ceiling instead of livelock)
// rather than stopping the world.
//
// Determinism contract: for a fixed (graph, plan, config, packets), every
// table, counter, and delivery verdict is byte-identical at every thread
// width -- announcement processing parallelizes per node with results
// merged in index order (src/util/par discipline), and all jitter derives
// from the config seed, never from scheduling.  tests/online_golden_test
// pins a seeded churn run at widths {1, 2, 7}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/routing/online/route_table.hpp"
#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"
#include "src/util/par.hpp"

namespace upn {

struct OnlineRouterConfig {
  std::uint32_t hello_interval = 4;  ///< rounds between a node's announcements
  std::uint32_t announce_cap = 8;    ///< max routes per announcement (bandwidth cap)
  std::uint32_t stale_after = 24;    ///< rounds of silence before an entry expires
  std::uint32_t backoff_base = 2;    ///< data-plane retry backoff; doubles per retry
  std::uint32_t backoff_cap = 64;    ///< ceiling on any single backoff wait
  std::uint32_t max_retries = 16;    ///< per packet, before declaring it lost
  std::uint32_t max_ttl = 0;         ///< hops before a retry; 0 = 4 * num_nodes
  std::uint32_t seq_lag = 4;         ///< per-hop seq slack (added to the rotation cycle)
                                     ///< before an incumbent route is presumed broken
  std::uint64_t seed = 0x0511;       ///< hello phases and backoff jitter
  ThreadPool* pool = nullptr;        ///< per-node announcement processing; null = serial
  RoutingPolicy* policy = nullptr;   ///< data-plane override; null = the route tables
};

/// Control-plane activity of one protocol round.
struct OnlineStepStats {
  std::uint64_t announcements = 0;  ///< hello messages sent over live links
  std::uint64_t revisions = 0;      ///< table entries created or rewritten
  std::uint64_t expired = 0;        ///< table entries dropped by staleness
  bool topology_changed = false;    ///< the fault clock activated kill/heal events
};

/// Outcome of run_until_stable().
struct ConvergenceReport {
  std::uint32_t rounds = 0;  ///< protocol rounds consumed
  bool stable = false;       ///< a full hello cycle passed with no revisions/expiries
};

/// Outcome of one data-plane routing call.
struct OnlineRouteResult {
  std::uint32_t steps = 0;      ///< host steps (= protocol rounds) consumed
  std::uint32_t delivered = 0;
  std::uint32_t lost = 0;       ///< retries exhausted, endpoint dead, or step ceiling
  std::uint64_t transfers = 0;  ///< single-link packet moves
  std::uint64_t retries = 0;    ///< backoff waits taken (no route / dead link / TTL)
  std::vector<Packet> packets;  ///< with delivered_at / lost filled in
};

class OnlineRouter {
 public:
  /// Graph and plan must outlive the router.  The fault clock starts at
  /// step 0; every protocol round advances it by one host step.
  OnlineRouter(const Graph& host, const FaultPlan& plan, OnlineRouterConfig config = {});

  /// Runs one protocol round: advance churn, exchange hello announcements
  /// over live links, fold them into the tables, expire stale entries.
  OnlineStepStats step();

  /// Steps until a full staleness window (stale_after + 1 consecutive
  /// rounds) passes with zero revisions and zero expiries, or max_rounds
  /// elapse.  The window is a staleness window rather than a hello cycle
  /// because a dead link is INVISIBLE until silence expires its routes.
  /// After churn stops this is the convergence point the property tests
  /// bound; under ongoing churn it typically reports stable == false.
  ConvergenceReport run_until_stable(std::uint32_t max_rounds);

  /// Routes packets over the ADAPTING tables: each host step runs one
  /// protocol round and then moves packets one table-directed hop (one
  /// packet per directed link per step; lowest id wins contention).
  /// Packets with no usable route wait out a seeded jittered backoff and
  /// retry; max_retries failures, a dead endpoint, or the step ceiling mark
  /// a packet lost -- the call never throws on undeliverable traffic.
  [[nodiscard]] OnlineRouteResult route(std::vector<Packet> packets,  // upn-analyze-waive(hotpath-by-value-param: sink parameter, moved into the result in the .cpp)
                                        std::uint32_t max_steps = 1u << 16);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// The NORMALIZED configuration: the constructor resolves max_ttl = 0 and
  /// raises stale_after to outlast the announcement-rotation cycle, so
  /// callers sizing convergence bounds must read the values back from here.
  [[nodiscard]] const OnlineRouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t now() const noexcept { return now_; }
  [[nodiscard]] const RouteTable& table(NodeId v) const { return tables_[v]; }

  /// Table-driven next hop at `at` toward `dst` (kNoRoute when unknown).
  [[nodiscard]] NodeId table_next_hop(NodeId at, NodeId dst) const;

  /// Hops from `src` to `dst` following the current tables; kNoRouteHops
  /// when some node on the way has no entry or the chain exceeds n hops.
  static constexpr std::uint32_t kNoRouteHops = 0xffffffffu;
  [[nodiscard]] std::uint32_t route_hops(NodeId src, NodeId dst) const;

  /// True iff no LIVE destination's next-hop chain cycles (chains may be
  /// incomplete mid-convergence; incompleteness is not a loop).  Routes
  /// toward a dead origin are exempt: the origin can never issue the
  /// fresher sequence that resolves a transient loop, so those entries may
  /// freeze arbitrarily -- the data plane bounds the damage instead
  /// (dead-endpoint check, TTL, retry budget).
  [[nodiscard]] bool loop_free() const;

 private:
  void compose_hellos(std::vector<std::vector<RouteAnnouncement>>& inbox,
                      OnlineStepStats& stats);
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> absorb_inbox_at(
      NodeId v, const std::vector<std::vector<RouteAnnouncement>>& inbox);

  const Graph* graph_;
  OnlineRouterConfig config_;
  FaultClock clock_;
  std::uint32_t now_ = 0;
  std::vector<RouteTable> tables_;
  std::vector<std::uint32_t> seq_;          ///< per-node hello sequence numbers
  std::vector<std::uint32_t> hello_phase_;  ///< seeded jitter desynchronizing hellos
  std::uint32_t seq_lag_per_hop_ = 0;       ///< seq_lag + announcement-rotation cycle
};

/// Canonical timing-free delivery verdict: one `<id> <src>-><dst> ok|lost`
/// line per packet, sorted by id.  The zero-churn differential test
/// byte-compares this between the online and offline routers.
[[nodiscard]] std::string delivery_verdicts(const std::vector<Packet>& packets);

}  // namespace upn
