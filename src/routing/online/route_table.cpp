#include "src/routing/online/route_table.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace upn {

namespace {

bool by_dest(const RouteEntry& e, NodeId dest) noexcept { return e.dest < dest; }

}  // namespace

TableUpdate RouteTable::apply(const RouteAnnouncement& a, NodeId via, std::uint32_t now,
                              std::uint32_t seq_lag_per_hop, std::uint32_t max_metric) {
  UPN_REQUIRE(via != self_, "RouteTable: announcements arrive from a neighbor, not self");
  if (a.origin == self_) return TableUpdate::kIgnored;
  const std::uint32_t metric = a.metric + 1;  // one hop through `via`
  // The infinity bound: no honest route is this long, so the announcement
  // can only be count-to-infinity inflation (corpse routes toward a dead
  // origin re-inserting each other with ever-growing metrics).  Dropping
  // it -- WITHOUT refreshing the staleness timer -- lets the corpse drain.
  if (metric > max_metric) return TableUpdate::kIgnored;
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), a.origin, by_dest);
  if (it == entries_.end() || it->dest != a.origin) {
    entries_.insert(it, RouteEntry{a.origin, via, metric, a.seq, now});
    return TableUpdate::kRevised;
  }

  // News from the incumbent next hop: track it.  The path can honestly
  // worsen (churn upstream) -- refusing the update would freeze a lie.
  if (via == it->next_hop) {
    if (a.seq > it->seq || (a.seq == it->seq && metric <= it->metric)) {
      const bool revised = it->metric != metric;
      it->metric = metric;
      it->seq = a.seq;
      it->last_heard = now;
      return revised ? TableUpdate::kRevised : TableUpdate::kRefreshed;
    }
    return TableUpdate::kIgnored;
  }

  // News from a DIFFERENT neighbor: switch for a strictly better metric
  // backed by reasonably fresh news, or when the incumbent's sequence lags
  // far enough behind that its path must be presumed broken (the origin's
  // heartbeats stopped flowing through it).  Without the lag gate,
  // "fresher always wins" lets two paths of unequal delay steal the route
  // from each other every hello cycle, forever; strict metric descent
  // cannot flap (each adoption lowers a bounded metric).  Both thresholds
  // scale per hop: a working k-hop path legitimately lags up to one
  // announcement-rotation cycle PER HOP, so a shorter route may be up to
  // seq_lag_per_hop * (its hops) hellos stale and still be believed, and
  // only a gap beyond seq_lag_per_hop * (incumbent hops + 1) hellos
  // convicts the incumbent.  Transient loops this staleness allowance can
  // form are drained by the max_metric ceiling, the gate itself (a loop
  // cannot advance the origin's sequence), and staleness expiry.
  const std::uint64_t broken_gap =
      static_cast<std::uint64_t>(seq_lag_per_hop) * (it->metric + 1);
  const std::uint64_t lag_allowance =
      static_cast<std::uint64_t>(seq_lag_per_hop) * metric;
  const bool better = metric < it->metric &&
                      std::uint64_t{a.seq} + lag_allowance >= std::uint64_t{it->seq};
  const bool incumbent_broken = a.seq > it->seq && a.seq - it->seq > broken_gap;
  if (better || incumbent_broken) {
    it->next_hop = via;
    it->metric = metric;
    it->seq = a.seq;
    it->last_heard = now;
    return TableUpdate::kRevised;
  }
  return TableUpdate::kIgnored;
}

std::size_t RouteTable::expire(std::uint32_t now, std::uint32_t stale_after) {
  UPN_REQUIRE(stale_after > 0, "RouteTable: a zero staleness window would expire everything");
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const RouteEntry& e) {
    return now - e.last_heard > stale_after;
  });
  UPN_ENSURE(entries_.size() <= before, "expiry cannot add entries");
  return before - entries_.size();
}

NodeId RouteTable::next_hop(NodeId dest) const noexcept {
  const RouteEntry* entry = find(dest);
  return entry == nullptr ? kNoRoute : entry->next_hop;
}

const RouteEntry* RouteTable::find(NodeId dest) const noexcept {
  // upn-contract-waive(pure lookup; nullptr is the documented miss result)
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), dest, by_dest);
  return it != entries_.end() && it->dest == dest ? &*it : nullptr;
}

std::vector<RouteAnnouncement> RouteTable::compose(std::uint32_t own_seq,
                                                   std::uint32_t cap) const {
  UPN_REQUIRE(cap >= 1, "RouteTable: the announcement cap must admit the self entry");
  std::vector<RouteAnnouncement> out;
  out.reserve(std::min<std::size_t>(cap, entries_.size() + 1));
  out.push_back(RouteAnnouncement{self_, own_seq, 0});
  // Nearest peers first (the serval-dna bandwidth-cap rationale: close
  // routes change fastest and matter most); dest id breaks ties so the
  // ranking is deterministic.
  std::vector<const RouteEntry*> ranked;
  ranked.reserve(entries_.size());
  for (const RouteEntry& e : entries_) ranked.push_back(&e);
  std::sort(ranked.begin(), ranked.end(), [](const RouteEntry* a, const RouteEntry* b) {
    return a->metric != b->metric ? a->metric < b->metric : a->dest < b->dest;
  });
  // The window rotates with the hello sequence so a small cap delays far
  // routes instead of silencing them forever: over ceil(E / (cap - 1))
  // hellos every entry is announced at least once.
  const std::size_t window = cap - 1;
  if (!ranked.empty() && window > 0) {
    const std::size_t start =
        (static_cast<std::size_t>(own_seq) * window) % ranked.size();
    for (std::size_t k = 0; k < ranked.size() && out.size() <= window; ++k) {
      const RouteEntry* e = ranked[(start + k) % ranked.size()];
      out.push_back(RouteAnnouncement{e->dest, e->seq, e->metric});
    }
  }
  UPN_ENSURE(out.size() <= cap, "announcements are bandwidth-capped");
  return out;
}

}  // namespace upn
