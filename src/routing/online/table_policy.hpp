// Bridge from learned route tables to the offline router's policy slot.
//
// OnlineTablePolicy exposes an OnlineRouter's converged tables through the
// RoutingPolicy interface, so the classic SyncRouter can execute traffic
// over routes that were LEARNED from announcements instead of computed from
// the global topology.  This is the seam the zero-churn differential test
// exercises: once tables converge on a static graph they encode shortest
// paths, and SyncRouter driven by this policy must produce delivery
// verdicts byte-identical to the oracle-driven offline run.
#pragma once

#include <string>

#include "src/routing/online/online_router.hpp"
#include "src/routing/router.hpp"

namespace upn {

/// Consults a router's CURRENT tables; it does not advance the protocol.
/// The router must outlive the policy and must hold a route for every
/// (location, destination) pair the traffic reaches -- converge first
/// (OnlineRouter::run_until_stable), then route.
class OnlineTablePolicy final : public RoutingPolicy {
 public:
  explicit OnlineTablePolicy(const OnlineRouter& router) : router_(&router) {}

  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "online-tables"; }

 private:
  const OnlineRouter* router_;
};

}  // namespace upn
