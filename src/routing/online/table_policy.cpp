#include "src/routing/online/table_policy.hpp"

#include "src/util/contracts.hpp"

namespace upn {

NodeId OnlineTablePolicy::next_hop(const Graph& graph, NodeId at, const Packet& packet) {
  const NodeId target = packet.current_target();
  const NodeId next = router_->table_next_hop(at, target);
  UPN_REQUIRE(next != kNoRoute,
              "OnlineTablePolicy: no learned route; converge the router before routing");
  UPN_ENSURE(graph.has_edge(at, next), "learned next hops follow host links");
  return next;
}

}  // namespace upn
