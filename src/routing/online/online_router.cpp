#include "src/routing/online/online_router.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn {

namespace {

/// Seeded jitter in [0, span): deterministic in (seed, salt), independent of
/// scheduling.  span == 0 yields 0.
[[nodiscard]] std::uint32_t jitter(std::uint64_t seed, std::uint64_t salt,
                                   std::uint32_t span) noexcept {
  return span == 0 ? 0u : static_cast<std::uint32_t>(mix64(seed ^ mix64(salt)) % span);
}

}  // namespace

OnlineRouter::OnlineRouter(const Graph& host, const FaultPlan& plan, OnlineRouterConfig config)
    : graph_(&host),
      config_(config),
      clock_(plan, host.num_nodes()),
      seq_(host.num_nodes(), 0),
      hello_phase_(host.num_nodes(), 0) {
  UPN_REQUIRE(host.num_nodes() >= 1, "OnlineRouter: the host must have nodes");
  UPN_REQUIRE(config_.hello_interval >= 1, "OnlineRouter: hello_interval must be >= 1");
  UPN_REQUIRE(config_.announce_cap >= 1, "OnlineRouter: announce_cap must admit self");
  UPN_REQUIRE(config_.stale_after >= config_.hello_interval,
              "OnlineRouter: entries must survive at least one hello cycle");
  UPN_REQUIRE(config_.backoff_base >= 1, "OnlineRouter: backoff_base must be >= 1");
  UPN_REQUIRE(config_.backoff_cap >= config_.backoff_base,
              "OnlineRouter: backoff_cap must be >= backoff_base");
  if (config_.max_ttl == 0) config_.max_ttl = 4 * host.num_nodes();
  // A working k-hop route legitimately lags up to one announcement-rotation
  // cycle per hop (the bandwidth cap walks the table one window per hello),
  // so the broken-incumbent gate gets the rotation cycle plus the
  // configured slack PER HOP; a flat gap would convict healthy long routes
  // and flap the tables forever.
  const std::uint32_t n = host.num_nodes();
  const std::uint32_t rotation =
      (n >= 2 && config_.announce_cap >= 2) ? (n - 2) / (config_.announce_cap - 1) + 1 : 1;
  seq_lag_per_hop_ = config_.seq_lag + rotation;
  // An entry's staleness timer is only refreshed when its next hop
  // re-announces that origin, which the bandwidth cap delays by up to a
  // full rotation cycle -- so the staleness window must outlast the
  // rotation or healthy routes expire spuriously.  Normalize rather than
  // reject: the cap and the window are independently configurable knobs.
  config_.stale_after =
      std::max(config_.stale_after, (rotation + 2) * config_.hello_interval);
  tables_.reserve(host.num_nodes());
  for (NodeId v = 0; v < host.num_nodes(); ++v) {
    tables_.emplace_back(v);
    // Desynchronized hello timers: real meshes jitter announcements so churn
    // recovery is not phase-locked to a global clock; seeding the phase
    // keeps the desynchronization reproducible.
    hello_phase_[v] = jitter(config_.seed, 0x48454c4cu + v, config_.hello_interval);
  }
  UPN_ENSURE(tables_.size() == host.num_nodes(), "one table per host node");
}

void OnlineRouter::compose_hellos(std::vector<std::vector<RouteAnnouncement>>& inbox,
                                  OnlineStepStats& stats) {
  const std::uint32_t n = graph_->num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    inbox[u].clear();
    if ((now_ + hello_phase_[u]) % config_.hello_interval != 0) continue;
    if (!clock_.node_alive(u)) continue;
    inbox[u] = tables_[u].compose(++seq_[u], config_.announce_cap);
    // The announcement is link-local: it reaches exactly the live neighbors.
    for (const NodeId nbr : graph_->neighbors(u)) {
      if (clock_.node_alive(nbr) && clock_.link_alive(u, nbr)) ++stats.announcements;
    }
  }
}

std::pair<std::uint64_t, std::uint64_t> OnlineRouter::absorb_inbox_at(
    NodeId v, const std::vector<std::vector<RouteAnnouncement>>& inbox) {
  std::uint64_t revisions = 0;
  if (!clock_.node_alive(v)) {
    // A dead node neither listens nor remembers; drop its state so chains
    // walked for diagnostics cannot pass through a corpse's fossils.
    const std::uint64_t dropped = tables_[v].size();
    if (dropped > 0) tables_[v] = RouteTable{v};
    return {0, dropped};
  }
  // Neighbors are visited in ascending id order, so the fold is a fixed
  // sequential program per node regardless of how nodes are parallelized.
  const std::uint32_t max_metric = graph_->num_nodes() - 1;
  for (const NodeId u : graph_->neighbors(v)) {
    if (inbox[u].empty()) continue;
    if (!clock_.node_alive(u) || !clock_.link_alive(u, v)) continue;
    for (const RouteAnnouncement& a : inbox[u]) {
      if (tables_[v].apply(a, u, now_, seq_lag_per_hop_, max_metric) ==
          TableUpdate::kRevised) {
        ++revisions;
      }
    }
  }
  const std::uint64_t expired = tables_[v].expire(now_, config_.stale_after);
  return {revisions, expired};
}

OnlineStepStats OnlineRouter::step() {
  const std::uint32_t before = now_;
  OnlineStepStats stats;
  ++now_;
  stats.topology_changed = clock_.advance(now_);

  const std::uint32_t n = graph_->num_nodes();
  std::vector<std::vector<RouteAnnouncement>> inbox(n);
  compose_hellos(inbox, stats);

  // Fold announcements per receiving node.  Task v writes only tables_[v]
  // and reads the (now frozen) inbox and fault clock, so the parallel fold
  // is race-free; collecting by index makes the counter sums and the tables
  // byte-identical to the serial path at any pool width.
  if (config_.pool != nullptr) {
    const auto deltas = config_.pool->parallel_map<std::pair<std::uint64_t, std::uint64_t>>(
        n, [&](std::size_t v) { return absorb_inbox_at(static_cast<NodeId>(v), inbox); });
    for (const auto& [revisions, expired] : deltas) {
      stats.revisions += revisions;
      stats.expired += expired;
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      const auto [revisions, expired] = absorb_inbox_at(v, inbox);
      stats.revisions += revisions;
      stats.expired += expired;
    }
  }

  UPN_OBS_COUNT("routing.online.steps", 1);
  UPN_OBS_COUNT("routing.online.announcements_sent", stats.announcements);
  UPN_OBS_COUNT("routing.online.table_revisions", stats.revisions);
  UPN_OBS_COUNT("routing.online.entries_expired", stats.expired);
  std::uint64_t total_entries = 0;
  for (const RouteTable& t : tables_) total_entries += t.size();
  UPN_OBS_GAUGE_MAX("routing.online.table_entries_peak", total_entries);
  UPN_ENSURE(now_ == before + 1, "one protocol round advances the clock by one host step");
  return stats;
}

ConvergenceReport OnlineRouter::run_until_stable(std::uint32_t max_rounds) {
  UPN_REQUIRE(max_rounds >= 1, "OnlineRouter: need at least one round to converge");
  ConvergenceReport report;
  std::uint32_t quiet = 0;
  // The quiet window must outlast a full staleness window, not just a hello
  // cycle: a route over a freshly dead link shows NO activity until silence
  // expires it stale_after rounds later, and declaring stability sooner
  // would freeze that corpse into the tables.
  const std::uint32_t quiet_window = config_.stale_after + 1;
  while (report.rounds < max_rounds) {
    const OnlineStepStats stats = step();
    ++report.rounds;
    quiet = (stats.revisions == 0 && stats.expired == 0 && !stats.topology_changed)
                ? quiet + 1
                : 0;
    if (quiet >= quiet_window) {
      report.stable = true;
      break;
    }
  }
  UPN_ENSURE(report.rounds <= max_rounds, "convergence respects the round budget");
  return report;
}

NodeId OnlineRouter::table_next_hop(NodeId at, NodeId dst) const {
  UPN_REQUIRE(at < tables_.size() && dst < tables_.size(),
              "OnlineRouter: endpoints must be host nodes");
  return at == dst ? at : tables_[at].next_hop(dst);
}

std::uint32_t OnlineRouter::route_hops(NodeId src, NodeId dst) const {
  UPN_REQUIRE(src < tables_.size() && dst < tables_.size(),
              "OnlineRouter: endpoints must be host nodes");
  NodeId at = src;
  std::uint32_t hops = 0;
  while (at != dst) {
    const NodeId next = tables_[at].next_hop(dst);
    if (next == kNoRoute || hops >= graph_->num_nodes()) return kNoRouteHops;
    at = next;
    ++hops;
  }
  return hops;
}

bool OnlineRouter::loop_free() const {
  UPN_REQUIRE(tables_.size() == graph_->num_nodes(),
              "OnlineRouter: one table per host node");
  const std::uint32_t n = graph_->num_nodes();
  for (NodeId dst = 0; dst < n; ++dst) {
    // Loop freedom is owed toward LIVE origins only: a dead origin can
    // never issue the fresher sequence that resolves a transient loop, so
    // its leftover routes may freeze arbitrarily.  The data plane already
    // bounds that damage (dead-endpoint check, TTL, retry budget).
    if (!clock_.node_alive(dst)) continue;
    for (NodeId src = 0; src < n; ++src) {
      if (src == dst || tables_[src].find(dst) == nullptr) continue;
      // Walk the next-hop chain; > n hops without arriving or running off
      // the table means some cycle repeated a node.
      NodeId at = src;
      std::uint32_t hops = 0;
      while (at != dst && hops <= n) {
        const NodeId next = tables_[at].next_hop(dst);
        if (next == kNoRoute) break;  // incomplete, not a loop
        at = next;
        ++hops;
      }
      if (at != dst && hops > n) return false;
    }
  }
  return true;
}

OnlineRouteResult OnlineRouter::route(std::vector<Packet> packets, std::uint32_t max_steps) {
  UPN_REQUIRE(max_steps >= 1, "OnlineRouter: need at least one step to route");
  OnlineRouteResult result;
  result.packets = std::move(packets);
  UPN_OBS_COUNT("routing.online.route_calls", 1);
  UPN_OBS_COUNT("routing.online.packets_submitted", result.packets.size());

  const std::uint32_t count = static_cast<std::uint32_t>(result.packets.size());
  std::vector<NodeId> location(count);
  std::vector<std::uint32_t> release(count, 0);  ///< first step a packet may move
  std::vector<std::uint32_t> hops(count, 0);     ///< hops since injection / last TTL trip
  std::uint32_t undelivered = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet& p = result.packets[i];
    p.id = i;
    p.lost = 0;
    p.retries = 0;
    p.delivered_at = -1;
    location[i] = p.src;
    if (p.src == p.dst) {
      p.delivered_at = 0;
      ++result.delivered;
    } else {
      ++undelivered;
    }
  }

  // A packet that cannot move (no route yet, dead link, TTL trip) waits out
  // a seeded jittered exponential backoff rather than spinning; the retry
  // budget and the step ceiling bound the wait, so churn the tables never
  // recover from degrades to per-packet loss instead of livelock.
  const auto backoff = [&](std::uint32_t step_now, Packet& p, std::uint32_t i) {
    ++result.retries;
    ++p.retries;
    if (p.retries > config_.max_retries) {
      p.lost = 1;
      ++result.lost;
      --undelivered;
      return;
    }
    const std::uint32_t shift = std::min<std::uint32_t>(p.retries, 16);
    const std::uint32_t base =
        std::min(config_.backoff_cap, config_.backoff_base << shift);
    release[i] = step_now + base +
                 jitter(config_.seed, 0xb0ffu ^ (std::uint64_t{i} << 20) ^ p.retries,
                        config_.backoff_base + 1);
  };

  struct Intent {
    NodeId from = 0;
    NodeId to = 0;
    std::uint32_t packet = 0;
  };
  std::vector<Intent> intents;

  std::uint32_t step_now = 0;
  while (undelivered > 0 && step_now < max_steps) {
    // The control plane keeps running underneath the traffic: churn lands,
    // hellos flow, tables adapt, WHILE packets are in flight.
    (void)step();
    ++step_now;

    intents.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      Packet& p = result.packets[i];
      if (p.delivered_at >= 0 || p.lost != 0 || release[i] > step_now) continue;
      const NodeId at = location[i];
      if (!clock_.node_alive(at) || !clock_.node_alive(p.dst)) {
        p.lost = 1;
        ++result.lost;
        --undelivered;
        continue;
      }
      const NodeId next = config_.policy != nullptr
                              ? config_.policy->next_hop(*graph_, at, p)
                              : tables_[at].next_hop(p.dst);
      if (next == kNoRoute || !graph_->has_edge(at, next) || !clock_.node_alive(next) ||
          !clock_.link_alive(at, next)) {
        backoff(step_now, p, i);
        continue;
      }
      intents.push_back(Intent{at, next, i});
    }

    // One packet per directed link per step (the MultiPort model).  Intents
    // were gathered in packet-id order, so scanning in order and granting
    // first-come per (from, to) awards every contested link to the lowest
    // id -- a fixed total order, independent of anything but the inputs.
    std::sort(intents.begin(), intents.end(), [](const Intent& a, const Intent& b) {
      return a.from != b.from ? a.from < b.from
             : a.to != b.to   ? a.to < b.to
                              : a.packet < b.packet;
    });
    const Intent* last = nullptr;
    for (const Intent& intent : intents) {
      if (last != nullptr && last->from == intent.from && last->to == intent.to) {
        continue;  // link busy this step; the loser retries next step, no backoff
      }
      last = &intent;
      Packet& p = result.packets[intent.packet];
      location[intent.packet] = intent.to;
      ++result.transfers;
      ++hops[intent.packet];
      if (intent.to == p.dst) {
        p.delivered_at = step_now;
        ++result.delivered;
        --undelivered;
      } else if (hops[intent.packet] > config_.max_ttl) {
        // The packet walked too far on stale routes; park it and let the
        // tables settle before it tries again.
        hops[intent.packet] = 0;
        backoff(step_now, p, intent.packet);
      }
    }
  }

  // Step ceiling: whatever is still in flight is accounted lost so callers
  // always get a verdict for every packet (graceful degradation, no throw).
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet& p = result.packets[i];
    if (p.delivered_at < 0 && p.lost == 0) {
      p.lost = 1;
      ++result.lost;
      --undelivered;
    }
  }
  result.steps = step_now;

  UPN_OBS_COUNT("routing.online.transfers", result.transfers);
  UPN_OBS_COUNT("routing.online.packets_delivered", result.delivered);
  UPN_OBS_COUNT("routing.online.packets_lost", result.lost);
  UPN_OBS_COUNT("routing.online.delivery_retries", result.retries);
  UPN_ENSURE(undelivered == 0, "every packet ends delivered or lost");
  UPN_ENSURE(result.delivered + result.lost == result.packets.size(),
             "verdicts partition the packet set");
  return result;
}

std::string delivery_verdicts(const std::vector<Packet>& packets) {
  std::vector<const Packet*> ordered;
  ordered.reserve(packets.size());
  for (const Packet& p : packets) ordered.push_back(&p);
  std::sort(ordered.begin(), ordered.end(),
            [](const Packet* a, const Packet* b) { return a->id < b->id; });
  UPN_ENSURE(ordered.size() == packets.size(), "one verdict line per packet");
  std::ostringstream os;
  for (const Packet* p : ordered) {
    os << p->id << ' ' << p->src << "->" << p->dst << ' ' << (p->lost != 0 ? "lost" : "ok")
       << '\n';
  }
  return os.str();
}

}  // namespace upn
