// Neighbor-scored route tables for the online adaptive routing regime.
//
// Each host node keeps a table of (destination -> next hop) entries learned
// EXCLUSIVELY from link-local announcements (src/routing/online/
// online_router.hpp); no node ever reads the global topology or the fault
// plan.  The update discipline is the BATMAN/DSDV family the serval-dna
// overlay router derives from (SNIPPETS.md): every origin stamps its
// announcements with a monotone sequence number, and a receiver adopts a
// route iff it is fresher (higher sequence) or equally fresh and strictly
// shorter.  Freshness-first acceptance is the loop-suppression argument:
// a route with sequence s can only point toward a node that heard s from
// the origin earlier, so next-hop chains for a fixed sequence number
// strictly descend in metric and cannot cycle.  An entry's staleness timer
// is refreshed ONLY when its next hop re-announces that origin, so an
// entry dies by silence whether the link itself died or the neighbor
// merely stopped claiming the route (corpse routes cascade-expire hop by
// hop instead of vouching for each other forever); the staleness window
// must therefore outlast the announcement-rotation cycle, which
// OnlineRouter normalizes into its config.  A metric ceiling (no honest
// route exceeds n - 1 hops) is the RIP-style infinity bound that stops
// count-to-infinity: routes toward a dead origin inflate past the ceiling
// and drain instead of circulating forever.  Death is DETECTED by
// silence, never looked up in an oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Sentinel for "no route known".
inline constexpr NodeId kNoRoute = 0xffffffffu;

/// One link-local route advertisement: `origin` is reachable through the
/// announcing neighbor in `metric` hops, as of the origin's `seq`-th hello.
struct RouteAnnouncement {
  NodeId origin = 0;
  std::uint32_t seq = 0;
  std::uint32_t metric = 0;

  friend bool operator==(const RouteAnnouncement&, const RouteAnnouncement&) = default;
};

/// One learned route at a node.
struct RouteEntry {
  NodeId dest = 0;
  NodeId next_hop = 0;
  std::uint32_t metric = 0;      ///< hop count through next_hop
  std::uint32_t seq = 0;         ///< origin sequence number backing the entry
  std::uint32_t last_heard = 0;  ///< host step of the last refresh
};

/// Outcome of applying one announcement to a table.
enum class TableUpdate : std::uint8_t {
  kRevised,    ///< a new entry, or next hop / metric / sequence changed
  kRefreshed,  ///< same route re-confirmed; only the staleness timer moved
  kIgnored,    ///< stale or worse than what the table already holds
};

/// The per-node routing state.  Entries are kept sorted by destination so
/// iteration, announcement selection, and serialization are deterministic.
class RouteTable {
 public:
  explicit RouteTable(NodeId self = 0) : self_(self) {}

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<RouteEntry>& entries() const noexcept { return entries_; }

  /// Applies an announcement heard from the adjacent node `via` at host
  /// step `now`.  The incumbent next hop may update its own route freely
  /// (fresher sequence, or equal sequence and metric); a DIFFERENT neighbor
  /// displaces the incumbent only with a strictly better metric backed by
  /// news at most `seq_lag_per_hop * (announced hops)` hellos staler than
  /// the incumbent's (strict metric descent cannot flap; the allowance
  /// absorbs honest rotation lag), or when the incumbent's sequence lags
  /// the announcement by more than `seq_lag_per_hop * (incumbent metric +
  /// 1)` hellos -- the signal that the incumbent's path stopped carrying
  /// the origin's heartbeats and must be presumed broken.  seq_lag_per_hop
  /// must exceed the announcement-rotation cycle (a working route
  /// refreshes its sequence at least once per rotation per hop) or healthy
  /// long routes get convicted and tables flap forever.  kRevised means the ROUTE changed
  /// (next hop or metric); a pure sequence refresh reports kRefreshed, so
  /// convergence detection sees a quiet network even while hellos keep
  /// flowing.  Announcements whose resulting metric exceeds `max_metric`
  /// are dropped (the RIP-style infinity bound; no honest route exceeds
  /// n - 1 hops), which is what drains count-to-infinity inflation toward
  /// dead origins.  Announcements about `self` are ignored.
  TableUpdate apply(const RouteAnnouncement& a, NodeId via, std::uint32_t now,
                    std::uint32_t seq_lag_per_hop = 8,
                    std::uint32_t max_metric = 0xffffffffu);

  /// Removes every entry not refreshed since `now - stale_after` (self is
  /// never stored, so never expired).  Returns the number removed.
  std::size_t expire(std::uint32_t now, std::uint32_t stale_after);

  /// Next hop toward `dest`, or kNoRoute when the table has no entry.
  [[nodiscard]] NodeId next_hop(NodeId dest) const noexcept;

  /// The entry for `dest`, or nullptr.
  [[nodiscard]] const RouteEntry* find(NodeId dest) const noexcept;

  /// The bandwidth-capped announcement set this node sends: itself (with
  /// `own_seq`) first, then at most `cap - 1` known routes.  Routes are
  /// ranked nearest-first by (metric, dest) -- the serval-dna rationale:
  /// close routes change fastest -- and the cap-sized window ROTATES with
  /// `own_seq`, so successive hellos walk the whole table and every route
  /// is eventually announced no matter how small the cap.  `cap` must be
  /// >= 1 so a node always announces its own reachability.
  [[nodiscard]] std::vector<RouteAnnouncement> compose(std::uint32_t own_seq,
                                                      std::uint32_t cap) const;

 private:
  NodeId self_;
  std::vector<RouteEntry> entries_;  ///< sorted by dest
};

}  // namespace upn
