// Synchronous store-and-forward packet router.
//
// The execution substrate for all routing measurements and for the universal
// simulator.  Two port models:
//
//  * MultiPort  -- every directed link carries one packet per step (the
//                  classic store-and-forward model; used to measure
//                  route_M(h) in the ROUTE experiment).
//  * SinglePort -- each processor performs at most ONE operation per step,
//                  so the transfers of a step form a matching between
//                  senders and receivers.  This matches the pebble-game
//                  model of Section 3.1 exactly ("every processor can
//                  perform one of the following operations": send a copy,
//                  or receive, or generate) and is what the universal
//                  simulator uses when it emits machine-checkable protocols.
//
// The implementation behind this API is the data-oriented fast-path engine
// (see docs/ROUTER_ENGINE.md): a CSR adjacency view cached per router,
// structure-of-arrays packet state, and flat intrusive per-port FIFO queues.
// It is proven bit-identical to the pre-rewrite node-based engine, which is
// preserved as tests/support/reference_router.{hpp,cpp} and exercised against
// this one by tests/router_differential_test.cpp and the differential fuzzer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

struct Packet {
  std::uint32_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  NodeId via = 0;            ///< Valiant intermediate; equals dst when unused
  std::uint8_t phase = 1;    ///< 0: heading to via, 1: heading to dst
  std::uint8_t lost = 0;     ///< 1: undeliverable under the active fault plan
  std::uint16_t retries = 0; ///< retransmissions + detours consumed (faults)
  std::uint64_t payload = 0; ///< opaque data (a guest configuration)
  std::uint32_t tag = 0;     ///< opaque tag (sending guest node id)
  std::uint32_t tag2 = 0;    ///< opaque tag (receiving guest node id)
  std::uint32_t injected_at = 0;
  std::int64_t delivered_at = -1;

  [[nodiscard]] NodeId current_target() const noexcept { return phase == 0 ? via : dst; }
};

/// One packet hop, for protocol emission and debugging.
struct Transfer {
  std::uint32_t step = 0;  ///< 0-based router step at which the hop happened
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t packet = 0;   ///< index into RouteResult::packets
  std::uint8_t dropped = 0;   ///< 1: the link was used but the packet was lost
                              ///< in flight (emit a SEND with no RECEIVE)
};

struct RouteResult {
  std::uint32_t steps = 0;          ///< steps until the last delivery
  std::uint64_t total_transfers = 0;
  std::uint32_t max_queue = 0;      ///< peak per-node buffered packets
  std::uint32_t packets_lost = 0;   ///< packets that could not be delivered
  std::uint64_t retransmissions = 0;///< resends after transient drops
  std::uint64_t reroutes = 0;       ///< detours around permanently dead links
  std::vector<Packet> packets;      ///< with delivered_at filled in
  std::vector<Transfer> transfers;  ///< full hop log if requested
};

/// Chooses the outgoing neighbor for a packet.  Policies may keep per-run
/// state; prepare() is called once with all packets before routing begins.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;  // upn-analyze-waive(hotpath-virtual: frozen public API; dispatch is per-placement, outside the per-step scan kernels)
  virtual void prepare(const Graph& graph, std::vector<Packet>& packets);  // upn-analyze-waive(hotpath-virtual: called once per route call, not per step)
  /// Next neighbor of `at` for this packet; must be adjacent to `at`.
  [[nodiscard]] virtual NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) = 0;  // upn-analyze-waive(hotpath-virtual: frozen public API; one call per packet placement, not per slot scan)
  [[nodiscard]] virtual std::string name() const = 0;  // upn-analyze-waive(hotpath-virtual: cold diagnostics path)
};

enum class PortModel : std::uint8_t {
  kMultiPort,   ///< one packet per directed link per step
  kSinglePort,  ///< one operation per node per step (pebble-game compatible)
};

class FaultPlan;

/// Fault-injection parameters for a routing run.  The plan is evaluated at
/// global host step `step_offset + local_step`, so a long simulation can
/// thread one plan through many routing phases.
struct FaultRouteOptions {
  const FaultPlan* plan = nullptr;  ///< nullptr: fault-free routing
  std::uint32_t step_offset = 0;    ///< global host step of local step 0
  std::uint32_t max_retries = 16;   ///< per packet, before declaring it lost
  std::uint32_t backoff_base = 1;   ///< resend delay; doubles per retry (capped)
};

class SyncRouter {
 public:
  SyncRouter(const Graph& graph, PortModel port_model);

  /// Routes all packets to their destinations.  Throws on livelock
  /// (no delivery progress within the step limit).
  [[nodiscard]] RouteResult route(std::vector<Packet> packets, RoutingPolicy& policy,  // upn-analyze-waive(hotpath-by-value-param: sink parameter, moved into the result in the .cpp)
                                  bool record_transfers = false,
                                  std::uint32_t max_steps = 1u << 22);

  /// Fault-aware routing: consults `faults.plan` every step.  Packets on
  /// links that die are re-queued around the failure (`reroutes`); packets
  /// dropped in a transient window are retransmitted by the sender with
  /// exponential backoff (`retransmissions`) until `max_retries` is
  /// exhausted; packets whose destination dies (or becomes unreachable in
  /// the surviving subgraph) are marked lost instead of throwing.  When
  /// `policy` is non-null its choices are used whenever they cross a live
  /// link; detours (and policy == nullptr) fall back to an internal greedy
  /// shortest-path policy computed on the live subgraph.
  [[nodiscard]] RouteResult route_with_faults(std::vector<Packet> packets,  // upn-analyze-waive(hotpath-by-value-param: sink parameter, moved into the result in the .cpp)
                                              const FaultRouteOptions& faults,
                                              RoutingPolicy* policy = nullptr,
                                              bool record_transfers = false,
                                              std::uint32_t max_steps = 1u << 22);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] PortModel port_model() const noexcept { return port_model_; }

 private:
  [[nodiscard]] RouteResult route_impl(std::vector<Packet> packets, RoutingPolicy* policy,  // upn-analyze-waive(hotpath-by-value-param: sink parameter, moved into the result in the .cpp)
                                       const FaultRouteOptions* faults, bool record_transfers,
                                       std::uint32_t max_steps);

  const Graph* graph_;
  PortModel port_model_;
  // CSR view of *graph_, cached once at construction for the hot kernels.
  const std::uint32_t* csr_offsets_ = nullptr;
  const NodeId* csr_adjacency_ = nullptr;
  std::uint32_t csr_slots_ = 0;  ///< 2 * num_edges(): number of directed-link slots
};

/// route_M(h) measurement: routes `instances` random h-relations and returns
/// the worst completion time observed.
struct RouteTimeEstimate {
  std::uint32_t worst_steps = 0;
  double mean_steps = 0.0;
};

class Rng;
[[nodiscard]] RouteTimeEstimate measure_route_time(const Graph& host, std::uint32_t h,
                                                   RoutingPolicy& policy, PortModel port_model,
                                                   std::uint32_t instances, Rng& rng);

}  // namespace upn
