#include "src/routing/adversarial.hpp"

#include <stdexcept>

#include "src/util/contracts.hpp"

namespace upn {

std::uint32_t bit_reverse(std::uint32_t value, std::uint32_t bits) noexcept {
  std::uint32_t result = 0;
  for (std::uint32_t b = 0; b < bits; ++b) {
    result |= ((value >> b) & 1u) << (bits - 1 - b);
  }
  return result;
}

std::uint32_t transpose_word(std::uint32_t value, std::uint32_t bits) noexcept {
  const std::uint32_t half = bits / 2;
  const std::uint32_t mask = (1u << half) - 1u;
  return ((value & mask) << half) | (value >> half);
}

HhProblem butterfly_bit_reversal(std::uint32_t dimension) {
  UPN_REQUIRE(dimension >= 1 && dimension < 32,
              "butterfly_bit_reversal: row index must fit a 32-bit word");
  const ButterflyLayout layout{dimension, false};
  HhProblem problem{layout.num_nodes()};
  for (std::uint32_t r = 0; r < layout.rows(); ++r) {
    problem.add(layout.id(0, r), layout.id(dimension, bit_reverse(r, dimension)));
  }
  return problem;
}

HhProblem butterfly_transpose(std::uint32_t dimension) {
  UPN_REQUIRE(dimension >= 1 && dimension < 32,
              "butterfly_transpose: row index must fit a 32-bit word");
  if (dimension % 2 != 0) {
    throw std::invalid_argument{"butterfly_transpose: dimension must be even"};
  }
  const ButterflyLayout layout{dimension, false};
  HhProblem problem{layout.num_nodes()};
  for (std::uint32_t r = 0; r < layout.rows(); ++r) {
    problem.add(layout.id(0, r), layout.id(dimension, transpose_word(r, dimension)));
  }
  return problem;
}

}  // namespace upn
