// Adversarial communication patterns for oblivious routers.
//
// Deterministic oblivious routing has provably bad permutations
// (Borodin-Hopcroft; cf. the bandwidth/simulation lower bounds [10, 17]
// cited in Section 1).  The classics on hypercubic networks are the
// bit-reversal and transpose permutations, which funnel Theta(sqrt(N))
// packets through single nodes under bit-fixing.  These generators let the
// ROUTE bench exhibit the effect and show Valiant's randomization erasing
// it.
#pragma once

#include <cstdint>

#include "src/routing/hh_problem.hpp"
#include "src/topology/butterfly.hpp"

namespace upn {

/// Row r (as a d-bit word) -> its bit reversal.
[[nodiscard]] std::uint32_t bit_reverse(std::uint32_t value, std::uint32_t bits) noexcept;

/// Row r = (hi || lo) -> (lo || hi): the matrix-transpose permutation
/// (d must be even).
[[nodiscard]] std::uint32_t transpose_word(std::uint32_t value, std::uint32_t bits) noexcept;

/// Bit-reversal demand pattern between level-0 butterfly nodes:
/// (0, r) -> (d, reverse(r)).  Every source row sends one packet.
[[nodiscard]] HhProblem butterfly_bit_reversal(std::uint32_t dimension);

/// Transpose demand pattern: (0, r) -> (d, transpose(r)); dimension even.
[[nodiscard]] HhProblem butterfly_transpose(std::uint32_t dimension);

}  // namespace upn
