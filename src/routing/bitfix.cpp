#include "src/routing/bitfix.hpp"

#include <stdexcept>

namespace upn {

void ButterflyBitfixPolicy::prepare(const Graph& graph, std::vector<Packet>& packets) {
  if (graph.num_nodes() != layout_.num_nodes()) {
    throw std::invalid_argument{"ButterflyBitfixPolicy: host is not the right butterfly"};
  }
  (void)packets;
}

NodeId ButterflyBitfixPolicy::next_hop(const Graph& /*graph*/, NodeId at,
                                       const Packet& packet) {
  const std::uint32_t level = layout_.level_of(at);
  const std::uint32_t row = layout_.row_of(at);
  const std::uint32_t dst_level = layout_.level_of(packet.dst);
  const std::uint32_t dst_row = layout_.row_of(packet.dst);

  // Bits below `level` have already been fixed on the ascent; a row
  // mismatch in [0, level) means we are still in phase 0 (descend).  A
  // mismatch anywhere means the ascent (phase 1) is unfinished.
  const std::uint32_t mismatch = row ^ dst_row;
  const std::uint32_t below_mask = (level == 0) ? 0u : ((1u << level) - 1u);
  if ((mismatch & below_mask) != 0) {
    return layout_.id(level - 1, row);  // phase 0: descend untangled
  }
  if (mismatch != 0) {
    // Phase 1: ascend; flip bit `level` if it disagrees.
    const std::uint32_t flip = (mismatch >> level) & 1u;
    return layout_.id(level + 1, flip ? (row ^ (1u << level)) : row);
  }
  // Phase 2: row correct; ride straight edges to the destination level.
  if (level < dst_level) return layout_.id(level + 1, row);
  if (level > dst_level) return layout_.id(level - 1, row);
  throw std::logic_error{"ButterflyBitfixPolicy: already at destination"};
}

}  // namespace upn
