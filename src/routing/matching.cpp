#include "src/routing/matching.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace upn {

void BipartiteGraph::add_edge(std::uint32_t l, std::uint32_t r) {
  if (l >= left_ || r >= right_) {
    throw std::out_of_range{"BipartiteGraph::add_edge: vertex out of range"};
  }
  edges_.emplace_back(l, r);
}

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

struct HkState {
  std::vector<std::uint32_t> adj_offsets;
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> match_left;
  std::vector<std::uint32_t> match_right;
  std::vector<std::uint32_t> dist;

  [[nodiscard]] bool bfs(std::uint32_t left_size) {
    std::queue<std::uint32_t> queue;
    for (std::uint32_t l = 0; l < left_size; ++l) {
      if (match_left[l] == MatchingResult::kUnmatched) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!queue.empty()) {
      const std::uint32_t l = queue.front();
      queue.pop();
      for (std::uint32_t e = adj_offsets[l]; e < adj_offsets[l + 1]; ++e) {
        const std::uint32_t r = adj[e];
        const std::uint32_t next = match_right[r];
        if (next == MatchingResult::kUnmatched) {
          found_augmenting = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found_augmenting;
  }

  [[nodiscard]] bool dfs(std::uint32_t l) {
    for (std::uint32_t e = adj_offsets[l]; e < adj_offsets[l + 1]; ++e) {
      const std::uint32_t r = adj[e];
      const std::uint32_t next = match_right[r];
      if (next == MatchingResult::kUnmatched ||
          (dist[next] == dist[l] + 1 && dfs(next))) {
        match_left[l] = r;
        match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }
};

}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& graph) {
  const std::uint32_t left_size = graph.left_size();
  HkState state;
  state.adj_offsets.assign(left_size + 1, 0);
  for (const auto& [l, r] : graph.edges()) ++state.adj_offsets[l + 1];
  for (std::uint32_t l = 1; l <= left_size; ++l) {
    state.adj_offsets[l] += state.adj_offsets[l - 1];
  }
  state.adj.resize(graph.edges().size());
  std::vector<std::uint32_t> cursor(state.adj_offsets.begin(), state.adj_offsets.end() - 1);
  for (const auto& [l, r] : graph.edges()) state.adj[cursor[l]++] = r;

  state.match_left.assign(left_size, MatchingResult::kUnmatched);
  state.match_right.assign(graph.right_size(), MatchingResult::kUnmatched);
  state.dist.assign(left_size, kInf);

  std::uint32_t size = 0;
  while (state.bfs(left_size)) {
    for (std::uint32_t l = 0; l < left_size; ++l) {
      if (state.match_left[l] == MatchingResult::kUnmatched && state.dfs(l)) ++size;
    }
  }

  MatchingResult result;
  result.match_left = std::move(state.match_left);
  result.match_right = std::move(state.match_right);
  result.size = size;
  return result;
}

}  // namespace upn
