#include "src/routing/decompose.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/routing/matching.hpp"

namespace upn {

namespace {

struct Edge {
  std::uint32_t src;
  std::uint32_t dst;
  bool dummy;
};

/// Splits an h-regular (h even) bipartite multigraph into two (h/2)-regular
/// halves by 2-coloring edges alternately along Eulerian circuits.
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> euler_split(
    const std::vector<Edge>& edges, const std::vector<std::uint32_t>& subset,
    std::uint32_t num_nodes) {
  // Bipartite vertices: sources 0..n-1, destinations n..2n-1.  The incidence
  // lists live in one flat CSR array (same per-vertex order as repeated
  // push_backs would give) so a split allocates three arrays, not 2n lists.
  const std::uint32_t total_vertices = 2 * num_nodes;
  std::vector<std::uint32_t> off(total_vertices + 1, 0);
  for (const std::uint32_t e : subset) {
    ++off[edges[e].src + 1];
    ++off[edges[e].dst + num_nodes + 1];
  }
  for (std::uint32_t v = 0; v < total_vertices; ++v) off[v + 1] += off[v];
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inc(2 * subset.size());
  {
    std::vector<std::uint32_t> fill(off.begin(), off.end() - 1);
    for (const std::uint32_t e : subset) {
      inc[fill[edges[e].src]++] = {edges[e].dst + num_nodes, e};
      inc[fill[edges[e].dst + num_nodes]++] = {edges[e].src, e};
    }
  }
  std::vector<char> used(edges.size(), 0);
  std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
  std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> halves;
  halves.first.reserve(subset.size() / 2);
  halves.second.reserve(subset.size() / 2);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  std::vector<std::uint32_t> circuit;
  for (std::uint32_t start = 0; start < total_vertices; ++start) {
    while (cursor[start] < off[start + 1]) {
      if (used[inc[cursor[start]].second]) {
        ++cursor[start];
        continue;
      }
      // Hierholzer: trace one circuit from `start`, collecting edge ids.
      stack.assign(1, {start, 0});
      circuit.clear();
      while (!stack.empty()) {
        const std::uint32_t v = stack.back().first;
        while (cursor[v] < off[v + 1] && used[inc[cursor[v]].second]) ++cursor[v];
        if (cursor[v] == off[v + 1]) {
          if (stack.back().second != 0) circuit.push_back(stack.back().second - 1);
          stack.pop_back();
        } else {
          const auto [next, edge_id] = inc[cursor[v]];
          used[edge_id] = 1;
          stack.push_back({next, edge_id + 1});
        }
      }
      // Alternate colors along the circuit.  Bipartite circuits have even
      // length, so the split is exact at every vertex.
      for (std::size_t i = 0; i < circuit.size(); ++i) {
        (i % 2 == 0 ? halves.first : halves.second).push_back(circuit[i]);
      }
    }
  }
  if (halves.first.size() != halves.second.size()) {
    throw std::logic_error{"euler_split: halves differ in size"};
  }
  return halves;
}

/// Peels one perfect matching (as edge ids) from an h-regular multigraph.
std::vector<std::uint32_t> peel_matching(const std::vector<Edge>& edges,
                                         std::vector<std::uint32_t>& subset,
                                         std::uint32_t num_nodes) {
  BipartiteGraph bipartite{num_nodes, num_nodes};
  for (const std::uint32_t e : subset) bipartite.add_edge(edges[e].src, edges[e].dst);
  const MatchingResult matching = hopcroft_karp(bipartite);
  if (matching.size != num_nodes) {
    // Koenig's theorem guarantees a perfect matching in a regular bipartite
    // multigraph; failure means the input was not regular.
    throw std::logic_error{"peel_matching: no perfect matching (input not regular?)"};
  }
  // Select one concrete edge instance per matched pair.
  std::vector<std::uint32_t> matched;
  matched.reserve(num_nodes);
  std::vector<char> satisfied(num_nodes, 0);
  std::vector<std::uint32_t> rest;
  rest.reserve(subset.size() - num_nodes);
  for (const std::uint32_t e : subset) {
    const std::uint32_t l = edges[e].src;
    if (!satisfied[l] && matching.match_left[l] == edges[e].dst) {
      satisfied[l] = 1;
      matched.push_back(e);
    } else {
      rest.push_back(e);
    }
  }
  subset = std::move(rest);
  return matched;
}

void decompose_recursive(const std::vector<Edge>& edges, std::vector<std::uint32_t> subset,
                         std::uint32_t h, std::uint32_t num_nodes,
                         std::vector<std::vector<std::uint32_t>>& rounds) {
  if (subset.empty() || h == 0) return;
  if (h == 1) {
    rounds.push_back(std::move(subset));
    return;
  }
  if (h % 2 == 1) {
    rounds.push_back(peel_matching(edges, subset, num_nodes));
    decompose_recursive(edges, std::move(subset), h - 1, num_nodes, rounds);
    return;
  }
  auto [first, second] = euler_split(edges, subset, num_nodes);
  decompose_recursive(edges, std::move(first), h / 2, num_nodes, rounds);
  decompose_recursive(edges, std::move(second), h / 2, num_nodes, rounds);
}

}  // namespace

std::vector<PermutationRound> decompose_into_permutations(const HhProblem& problem) {
  const std::uint32_t n = problem.num_nodes();
  const std::uint32_t h = problem.h();
  if (h == 0) return {};

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(h) * n);
  std::vector<std::uint32_t> out_deg(n, 0), in_deg(n, 0);
  for (const Demand& d : problem.demands()) {
    edges.push_back(Edge{d.src, d.dst, /*dummy=*/false});
    ++out_deg[d.src];
    ++in_deg[d.dst];
  }
  // Pad to exactly h-regular with dummy demands.
  std::uint32_t src_cursor = 0, dst_cursor = 0;
  while (true) {
    while (src_cursor < n && out_deg[src_cursor] == h) ++src_cursor;
    while (dst_cursor < n && in_deg[dst_cursor] == h) ++dst_cursor;
    if (src_cursor == n || dst_cursor == n) break;
    edges.push_back(Edge{src_cursor, dst_cursor, /*dummy=*/true});
    ++out_deg[src_cursor];
    ++in_deg[dst_cursor];
  }

  std::vector<std::uint32_t> all(edges.size());
  for (std::uint32_t e = 0; e < edges.size(); ++e) all[e] = e;
  std::vector<std::vector<std::uint32_t>> raw_rounds;
  decompose_recursive(edges, std::move(all), h, n, raw_rounds);

  std::vector<PermutationRound> rounds;
  rounds.reserve(raw_rounds.size());
  for (const auto& raw : raw_rounds) {
    PermutationRound round;
    for (const std::uint32_t e : raw) {
      if (!edges[e].dummy) round.push_back(Demand{edges[e].src, edges[e].dst});
    }
    if (!round.empty()) rounds.push_back(std::move(round));
  }
  return rounds;
}

bool is_partial_permutation(const PermutationRound& round, std::uint32_t num_nodes) {
  std::vector<char> src_seen(num_nodes, 0), dst_seen(num_nodes, 0);
  for (const Demand& d : round) {
    if (d.src >= num_nodes || d.dst >= num_nodes) return false;
    if (src_seen[d.src] || dst_seen[d.dst]) return false;
    src_seen[d.src] = 1;
    dst_seen[d.dst] = 1;
  }
  return true;
}

}  // namespace upn
