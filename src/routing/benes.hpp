// Benes / Waksman off-line permutation routing.
//
// Section 2 routes the precomputed permutations of Theorem 2.1's butterfly
// corollary "off-line in O(log m)" [Waksman 1968].  A Benes network on
// N = 2^d rows is rearrangeable: every permutation of the rows can be
// realized with node-disjoint paths, one level at a time.  We implement the
// classic looping (2-coloring) algorithm.
//
// Level structure used here (chosen to map 1:1 onto the unwrapped butterfly,
// see offline_butterfly.hpp): 2d+1 wire levels 0..2d; the stage from level
// s to s+1 may flip exactly bit b(s), with b(s) = s for s < d (forward
// sweep) and b(s) = 2d-1-s for s >= d (backward sweep).  At every level the
// packet positions form a permutation of the rows, so the paths are
// node-disjoint at each level.
#pragma once

#include <cstdint>
#include <vector>

namespace upn {

/// Node-disjoint Benes paths for a permutation.
struct BenesPaths {
  std::uint32_t dimension = 0;  ///< d; N = 2^d rows, 2d+1 levels
  /// rows[i][level] = row of the packet starting at input row i, for
  /// level in [0, 2d].  rows[i][0] == i and rows[i][2d] == perm[i].
  std::vector<std::vector<std::uint32_t>> rows;
};

/// Computes Benes paths realizing `perm` (perm[i] = destination row of the
/// packet entering at row i).  perm must be a permutation of [0, 2^d) for
/// some d >= 1; throws otherwise.
[[nodiscard]] BenesPaths benes_route(const std::vector<std::uint32_t>& perm);

/// True iff the paths are level-wise node-disjoint, use only legal bit
/// flips, and realize the permutation.  Used by tests and assertions.
[[nodiscard]] bool validate_benes_paths(const BenesPaths& paths,
                                        const std::vector<std::uint32_t>& perm);

}  // namespace upn
