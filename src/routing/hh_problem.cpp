#include "src/routing/hh_problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace upn {

void HhProblem::add(NodeId src, NodeId dst) {  // upn-analyze-waive(hotpath-unchecked-entry: both node ids are range-checked by the explicit out_of_range throw below)
  if (src >= num_nodes_ || dst >= num_nodes_) {
    throw std::out_of_range{"HhProblem::add: node id out of range"};
  }
  demands_.push_back(Demand{src, dst});
}

std::uint32_t HhProblem::h() const {
  std::vector<std::uint32_t> out(num_nodes_, 0), in(num_nodes_, 0);
  for (const Demand& d : demands_) {
    ++out[d.src];
    ++in[d.dst];
  }
  std::uint32_t h = 0;
  for (std::uint32_t v = 0; v < num_nodes_; ++v) {
    h = std::max({h, out[v], in[v]});
  }
  return h;
}

HhProblem random_permutation_problem(std::uint32_t num_nodes, Rng& rng) {
  HhProblem problem{num_nodes};
  const auto perm = rng.permutation(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) problem.add(v, perm[v]);
  return problem;
}

HhProblem random_h_relation(std::uint32_t num_nodes, std::uint32_t h, Rng& rng) {
  HhProblem problem{num_nodes};
  for (std::uint32_t round = 0; round < h; ++round) {
    const auto perm = rng.permutation(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) problem.add(v, perm[v]);
  }
  return problem;
}

HhProblem guest_step_relation(const Graph& guest, const std::vector<NodeId>& embedding,
                              std::uint32_t host_nodes) {
  if (embedding.size() != guest.num_nodes()) {
    throw std::invalid_argument{"guest_step_relation: embedding size mismatch"};
  }
  HhProblem problem{host_nodes};
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] != embedding[v]) problem.add(embedding[u], embedding[v]);
    }
  }
  return problem;
}

}  // namespace upn
