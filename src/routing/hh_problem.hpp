// h-h routing problems (Section 2).
//
// "Let each processor of G hold at most h packets each with a desired
// destination address... Let each processor be the destination of at most h
// packets."  route_G(h) is the time to solve any such instance; Theorem 2.1
// reduces universal simulation to h-h routing with h = ceil(n/m).
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// One routing demand: deliver a packet from `src` to `dst`.
struct Demand {
  NodeId src = 0;
  NodeId dst = 0;
};

/// A multiset of demands over `num_nodes` processors.
class HhProblem {
 public:
  explicit HhProblem(std::uint32_t num_nodes) : num_nodes_(num_nodes) {}

  void add(NodeId src, NodeId dst);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] const std::vector<Demand>& demands() const noexcept { return demands_; }
  [[nodiscard]] std::size_t size() const noexcept { return demands_.size(); }

  /// The h of this instance: max over nodes of max(#sourced, #received).
  [[nodiscard]] std::uint32_t h() const;

  /// True iff every node sources <= h and receives <= h packets.
  [[nodiscard]] bool is_hh(std::uint32_t h) const { return this->h() <= h; }

 private:
  std::uint32_t num_nodes_;
  std::vector<Demand> demands_;
};

/// A uniformly random (partial) permutation instance: every node sources
/// exactly one packet with distinct destinations (h = 1).
[[nodiscard]] HhProblem random_permutation_problem(std::uint32_t num_nodes, Rng& rng);

/// A random h-relation: each node sources exactly h packets; destinations
/// chosen as h random permutations, so each node also receives exactly h.
[[nodiscard]] HhProblem random_h_relation(std::uint32_t num_nodes, std::uint32_t h, Rng& rng);

/// The communication relation of one guest step under an embedding:
/// for each guest edge {u, v} with f(u) != f(v), demands f(u)->f(v) and
/// f(v)->f(u).  This is the h-h instance of Theorem 2.1's proof.
[[nodiscard]] HhProblem guest_step_relation(const Graph& guest,
                                            const std::vector<NodeId>& embedding,
                                            std::uint32_t host_nodes);

}  // namespace upn
