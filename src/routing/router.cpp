// Data-oriented fast-path packet engine (docs/ROUTER_ENGINE.md).
//
// This is the rewrite of the node-based store-and-forward loop that ROADMAP
// item 1 calls for: the per-step state lives in flat arrays indexed by node,
// directed-link slot, and packet -- no per-node containers, no allocation
// inside the step loop, no adjacency span construction per query.
//
//  * CSR view      The router caches the Graph's flat offset/adjacency
//                  arrays once at construction; every kernel walks raw
//                  pointers (`off[v] .. off[v+1]` delimits v's ports).
//  * SoA packets   Hot packet fields (dst/via/phase/current target/retries)
//                  are split into parallel arrays; the cold Packet structs
//                  are only touched on rare events (phase flip, loss,
//                  delivery) and synced back before returning.
//  * Flat queues   The per-(node, port) FIFO is an intrusive linked list
//                  threaded through one `qnext` array -- a packet sits in at
//                  most one port queue at a time -- with head/tail cursors
//                  per directed-link slot.  push/pop are two array writes.
//  * Step kernels  The MultiPort kernel is a branch-light sweep over the
//                  occupied slots of occupied nodes; the SinglePort matching
//                  pass batches the greedy maximal matching over flat busy /
//                  buffered / round-robin-cursor arrays.
//
// The engine is bit-identical to the pre-rewrite implementation, which is
// preserved verbatim as tests/support/reference_router.{hpp,cpp}: the
// differential suites (tests/router_differential_test.cpp and the fuzzer in
// tests/router_fuzz_test.cpp) execute both engines on identical inputs and
// assert equal RouteResults including the full transfer log, and the golden
// `routing.sync.*` snapshots pin every counter byte-for-byte.  Any change
// here must keep the placement order, matching order, tie-breaking, and obs
// instrumentation sequence exactly as the reference computes them.
#include "src/routing/router.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/policies.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn {

void RoutingPolicy::prepare(const Graph& /*graph*/, std::vector<Packet>& /*packets*/) {}

SyncRouter::SyncRouter(const Graph& graph, PortModel port_model)
    : graph_(&graph), port_model_(port_model) {
  // CSR view, materialized once per router: raw pointers into the graph's
  // flat offset/adjacency storage (the Graph outlives the router by
  // contract, as before).
  csr_offsets_ = graph.offsets().data();
  csr_adjacency_ = graph.adjacency().data();
  csr_slots_ = static_cast<std::uint32_t>(graph.adjacency().size());
}

namespace {

/// A packet waiting out a retransmission backoff at `holder`.
struct DelayedPacket {
  std::uint32_t release_step = 0;
  std::uint32_t packet = 0;
  NodeId holder = 0;
};

constexpr NodeId kNoHop = std::numeric_limits<NodeId>::max();
constexpr std::uint32_t kNoIndex = 0xffffffffu;

/// Shortest-path next hops on the LIVE subgraph defined by a FaultClock.
/// Distance vectors are cached per target and invalidated when permanent
/// faults activate (the live subgraph only ever shrinks).  Walks the flat
/// CSR arrays directly.
class LiveRouteOracle {
 public:
  LiveRouteOracle(const std::uint32_t* offsets, const NodeId* adjacency,
                  std::uint32_t num_nodes)
      : off_(offsets), adj_(adjacency), n_(num_nodes) {}

  void invalidate() { cache_.clear(); }

  /// Live neighbor of `at` closest to `target`; kNoHop when `target` is
  /// unreachable from `at` in the surviving subgraph.
  [[nodiscard]] NodeId next_hop(const FaultClock& clock, NodeId at, NodeId target,
                                std::uint32_t salt) {
    const std::vector<std::uint32_t>& dist = distances(clock, target);
    if (dist[at] == std::numeric_limits<std::uint32_t>::max()) return kNoHop;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t count = 0;
    NodeId first = kNoHop;
    for (std::uint32_t slot = off_[at]; slot < off_[at + 1]; ++slot) {
      const NodeId u = adj_[slot];
      if (!clock.link_alive(at, u)) continue;
      if (dist[u] < best) {
        best = dist[u];
        count = 1;
        first = u;
      } else if (dist[u] == best) {
        ++count;
      }
    }
    if (count == 0) return kNoHop;
    if (count == 1) return first;  // hash % 1 == 0: the sole minimizer wins
    const std::uint64_t hash = mix64((static_cast<std::uint64_t>(salt) << 32) | at);
    std::uint32_t skip = static_cast<std::uint32_t>(hash % count);
    for (std::uint32_t slot = off_[at]; slot < off_[at + 1]; ++slot) {
      const NodeId u = adj_[slot];
      if (!clock.link_alive(at, u) || dist[u] != best) continue;
      if (skip == 0) return u;
      --skip;
    }
    return kNoHop;
  }

 private:
  const std::vector<std::uint32_t>& distances(const FaultClock& clock, NodeId target) {
    const auto it = cache_.find(target);
    if (it != cache_.end()) return it->second;
    constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> dist(n_, kInf);
    std::vector<NodeId> frontier;
    if (clock.node_alive(target)) {
      dist[target] = 0;
      frontier.push_back(target);
    }
    std::vector<NodeId> next;
    std::uint32_t level = 0;
    while (!frontier.empty()) {
      ++level;
      next.clear();
      for (const NodeId v : frontier) {
        for (std::uint32_t slot = off_[v]; slot < off_[v + 1]; ++slot) {
          const NodeId u = adj_[slot];
          if (dist[u] == kInf && clock.link_alive(v, u)) {
            dist[u] = level;
            next.push_back(u);
          }
        }
      }
      frontier.swap(next);
    }
    return cache_.emplace(target, std::move(dist)).first->second;
  }

  const std::uint32_t* off_;
  const NodeId* adj_;
  std::uint32_t n_;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> cache_;
};

}  // namespace

RouteResult SyncRouter::route(std::vector<Packet> packets, RoutingPolicy& policy,
                              bool record_transfers, std::uint32_t max_steps) {
  return route_impl(std::move(packets), &policy, nullptr, record_transfers, max_steps);
}

RouteResult SyncRouter::route_with_faults(std::vector<Packet> packets,
                                          const FaultRouteOptions& faults,
                                          RoutingPolicy* policy, bool record_transfers,
                                          std::uint32_t max_steps) {
  if (faults.plan == nullptr) {
    if (policy == nullptr) {
      throw std::invalid_argument{
          "SyncRouter::route_with_faults: need a policy when no plan is given"};
    }
    return route_impl(std::move(packets), policy, nullptr, record_transfers, max_steps);
  }
  return route_impl(std::move(packets), policy, &faults, record_transfers, max_steps);
}

RouteResult SyncRouter::route_impl(std::vector<Packet> packets, RoutingPolicy* policy,
                                   const FaultRouteOptions* faults, bool record_transfers,
                                   std::uint32_t max_steps) {
  UPN_OBS_SPAN("routing.sync.route");
  UPN_OBS_STEP(0);
  const Graph& g = *graph_;
  const std::uint32_t n = g.num_nodes();
  UPN_OBS_COUNT("routing.sync.route_calls", 1);
  UPN_OBS_COUNT("routing.sync.packets_submitted", packets.size());
  for (const Packet& p : packets) {
    UPN_REQUIRE(p.src < n && p.dst < n, "SyncRouter: packet endpoints must be host nodes");
    UPN_REQUIRE(p.via < n, "SyncRouter: Valiant via must be a host node");
  }
  if (policy != nullptr) policy->prepare(g, packets);

  const std::uint32_t num_packets = static_cast<std::uint32_t>(packets.size());
  const std::uint32_t* off = csr_offsets_;
  const NodeId* adj = csr_adjacency_;

  RouteResult result;

  // Per-(node, port) FIFO queues as one intrusive linked list: slot s is the
  // directed link adj[s] out of its owning node; each slot carries its
  // head/tail cursor pair on one 8-byte record (so push and pop touch one
  // cache line) and qnext threads the waiting packets.  A packet is in at
  // most one port queue at a time, so one next-pointer array suffices.
  struct QueueEnds {
    std::uint32_t head;
    std::uint32_t tail;
  };
  std::vector<QueueEnds> queue(csr_slots_, QueueEnds{kNoIndex, kNoIndex});
  std::vector<std::uint32_t> qnext(num_packets, kNoIndex);
  std::vector<std::uint32_t> buffered(n, 0);   // packets queued per node
  std::vector<std::uint32_t> rr_cursor(n, 0);  // round-robin port scan start

  // Structure-of-arrays packet state: the hot fields the kernels touch every
  // hop, split out of the cold 48-byte Packet records.  `target` caches the
  // phase-dependent destination so placement never re-derives it; `phase`
  // flips are written through to the Packet (policies read it), every other
  // hot field is synced back once at the end.
  std::vector<NodeId> pk_dst(num_packets);
  std::vector<NodeId> pk_via(num_packets);
  std::vector<NodeId> pk_target(num_packets);
  std::vector<std::uint8_t> pk_phase(num_packets);
  std::vector<std::uint16_t> pk_retries(num_packets, 0);
  for (std::uint32_t i = 0; i < num_packets; ++i) {
    Packet& p = packets[i];
    p.id = i;
    p.delivered_at = -1;
    p.lost = 0;
    p.retries = 0;
    pk_dst[i] = p.dst;
    pk_via[i] = p.via;
    pk_phase[i] = p.phase;
    pk_target[i] = p.phase == 0 ? p.via : p.dst;
  }

  // Devirtualized routing decision: the stock greedy/Valiant policies both
  // reduce to greedy_next_port over their distance oracle, and its port
  // result names the directed-link slot for free (graphs are simple, so a
  // neighbor's port is unique).  Equivalent to policy->next_hop() followed
  // by slot_of() -- GreedyPolicy/ValiantPolicy::next_hop are exactly
  // greedy_next_hop(g, oracle, at, packet.current_target(), packet.id), and
  // pk_target / the loop index mirror current_target() / id.
  DistanceOracle* direct_oracle = nullptr;
  if (auto* greedy = dynamic_cast<GreedyPolicy*>(policy)) {
    direct_oracle = &greedy->oracle();
  } else if (auto* valiant = dynamic_cast<ValiantPolicy*>(policy)) {
    direct_oracle = &valiant->oracle();
  }

  std::optional<FaultClock> clock;
  LiveRouteOracle oracle{off, adj, n};
  std::vector<DelayedPacket> delayed;
  if (faults != nullptr) {
    clock.emplace(*faults->plan, n);
    if (clock->advance(faults->step_offset)) oracle.invalidate();
  }

  // Directed-link slot of neighbor `to` within `from`'s sorted CSR slice.
  // Host degrees are small constants, so a linear scan beats binary search.
  auto slot_of = [&](NodeId from, NodeId to) -> std::uint32_t {
    for (std::uint32_t slot = off[from]; slot < off[from + 1]; ++slot) {
      if (adj[slot] == to) return slot;
    }
    throw std::logic_error{"SyncRouter: policy returned a non-neighbor" +
                           obs::context_suffix()};
  };

  auto enqueue = [&](NodeId at, std::uint32_t slot, std::uint32_t packet_index) {
    qnext[packet_index] = kNoIndex;
    QueueEnds& q = queue[slot];
    if (q.tail == kNoIndex) {
      q.head = packet_index;
    } else {
      qnext[q.tail] = packet_index;
    }
    q.tail = packet_index;
    ++buffered[at];
  };

  auto pop_front = [&](NodeId at, std::uint32_t slot) -> std::uint32_t {
    QueueEnds& q = queue[slot];
    const std::uint32_t packet_index = q.head;
    q.head = qnext[packet_index];
    if (q.head == kNoIndex) q.tail = kNoIndex;
    --buffered[at];
    return packet_index;
  };

  std::uint32_t undelivered = 0;

  enum class Placement : std::uint8_t { kDelivered, kQueued, kLost };

  // A packet has just arrived (or started, or was re-queued) at `at`:
  // deliver, advance its Valiant phase, or enqueue it on the port the
  // routing decision selects.  `detour` forces the fault-aware oracle even
  // when an external policy is present (used after a policy choice died).
  // The fast path reads the hot fields through the one Packet cache line the
  // policy call is about to touch anyway; the SoA mirrors are kept in sync
  // on phase flips and drive the fault-aware branches (epoch requeues, the
  // oracle, retry budgets), where their batched layout pays off.
  auto place = [&](std::uint32_t packet_index, NodeId at, bool detour) -> Placement {
    if (clock && !clock->node_alive(at)) return Placement::kLost;
    Packet& p = packets[packet_index];
    if (p.phase == 0 &&
        (at == pk_via[packet_index] || (clock && !clock->node_alive(pk_via[packet_index])))) {
      pk_phase[packet_index] = 1;  // via reached -- or dead: skip the detour
      pk_target[packet_index] = pk_dst[packet_index];
      p.phase = 1;  // write-through: policies read phase
    }
    if (at == p.dst && p.phase == 1) {
      return Placement::kDelivered;
    }
    NodeId next = kNoHop;
    if (!clock) {
      if (direct_oracle != nullptr) {
        const std::uint32_t port =
            greedy_next_port(g, *direct_oracle, at, pk_target[packet_index], packet_index);
        enqueue(at, off[at] + port, packet_index);
        return Placement::kQueued;
      }
      next = policy->next_hop(g, at, p);
    } else {
      if (!clock->node_alive(pk_dst[packet_index])) return Placement::kLost;
      if (policy != nullptr && !detour) {
        const NodeId choice =
            direct_oracle != nullptr
                ? adj[off[at] + greedy_next_port(g, *direct_oracle, at,
                                                 pk_target[packet_index], packet_index)]
                : policy->next_hop(g, at, p);
        if (clock->link_alive(at, choice)) next = choice;
      }
      if (next == kNoHop) {
        next = oracle.next_hop(*clock, at, pk_target[packet_index], packet_index);
        if (next == kNoHop) return Placement::kLost;  // unreachable survivor
      }
    }
    enqueue(at, slot_of(at, next), packet_index);
    return Placement::kQueued;
  };

  auto mark_lost = [&](std::uint32_t packet_index) {
    packets[packet_index].lost = 1;
    packets[packet_index].delivered_at = -1;
    ++result.packets_lost;
  };

  for (std::uint32_t i = 0; i < num_packets; ++i) {
    if (pk_phase[i] == 1 && packets[i].src == pk_dst[i]) {
      if (clock && !clock->node_alive(packets[i].src)) {
        mark_lost(i);
      } else {
        packets[i].delivered_at = 0;
      }
      continue;
    }
    switch (place(i, packets[i].src, false)) {
      case Placement::kDelivered:
        packets[i].delivered_at = 0;
        break;
      case Placement::kQueued:
        ++undelivered;
        break;
      case Placement::kLost:
        mark_lost(i);
        break;
    }
  }
  for (NodeId v = 0; v < n; ++v) result.max_queue = std::max(result.max_queue, buffered[v]);

  std::uint32_t step = 0;

  // Flushes queues invalidated by newly activated permanent faults: queues
  // at dead nodes are lost wholesale; queues on dead ports are re-routed.
  std::vector<std::uint32_t> requeue;
  auto apply_epoch = [&]() {
    oracle.invalidate();
    for (NodeId v = 0; v < n; ++v) {
      if (buffered[v] == 0) continue;
      if (!clock->node_alive(v)) {
        for (std::uint32_t slot = off[v]; slot < off[v + 1]; ++slot) {
          while (queue[slot].head != kNoIndex) {
            mark_lost(pop_front(v, slot));
            --undelivered;
          }
        }
        continue;
      }
      for (std::uint32_t slot = off[v]; slot < off[v + 1]; ++slot) {
        if (clock->link_alive(v, adj[slot])) continue;
        while (queue[slot].head != kNoIndex) requeue.push_back(pop_front(v, slot));
        for (const std::uint32_t packet_index : requeue) {
          ++result.reroutes;
          ++pk_retries[packet_index];
          switch (place(packet_index, v, true)) {
            case Placement::kDelivered:  // via skipped and v == dst
              packets[packet_index].delivered_at = step;
              --undelivered;
              break;
            case Placement::kQueued:
              break;
            case Placement::kLost:
              mark_lost(packet_index);
              --undelivered;
              break;
          }
        }
        requeue.clear();
      }
    }
  };

  std::vector<std::pair<std::uint32_t, NodeId>> arrivals;  // (packet, node)
  std::vector<char> busy(n, 0);
  while (undelivered > 0) {
    UPN_OBS_SET_STEP(step);
    if (step >= max_steps) {
      throw std::runtime_error{"SyncRouter::route: step limit exceeded (livelock?)" +
                               obs::context_suffix()};
    }
    const std::uint32_t global_step = faults == nullptr ? step : faults->step_offset + step;
    if (clock && clock->advance(global_step)) apply_epoch();

    // Release packets whose retransmission backoff expired.
    if (!delayed.empty()) {
      std::size_t kept = 0;
      for (const DelayedPacket& d : delayed) {
        if (d.release_step > step) {
          delayed[kept++] = d;
          continue;
        }
        switch (place(d.packet, d.holder, false)) {
          case Placement::kDelivered:
            packets[d.packet].delivered_at = step;
            --undelivered;
            break;
          case Placement::kQueued:
            break;
          case Placement::kLost:
            mark_lost(d.packet);
            --undelivered;
            break;
        }
      }
      delayed.resize(kept);
    }

    arrivals.clear();

    // Selects the transfer (v --slot--> w, packet) for this step, honoring
    // transient drop windows: a dropped transfer consumes the link (and, in
    // the single-port model, both endpoints' operations) but the packet is
    // lost in flight and retransmitted by the sender after a backoff.
    auto move_packet = [&](NodeId v, std::uint32_t slot, NodeId w) {
      const std::uint32_t packet_index = pop_front(v, slot);
      ++result.total_transfers;
      const bool dropped = clock && clock->drops_packet(v, w, packet_index);
      if (record_transfers) {
        result.transfers.push_back(
            Transfer{step, v, w, packet_index,
                     // Bool to byte, range {0,1}:
                     static_cast<std::uint8_t>(dropped ? 1 : 0)});  // upn-lint-allow(narrowing-cast)
      }
      if (!dropped) {
#if defined(__GNUC__) || defined(__clang__)
        // The arrival pass (after this kernel sweep) reads this packet's
        // record; fetching it now overlaps the miss with the rest of the
        // sweep instead of stalling the placement loop.
        __builtin_prefetch(&packets[packet_index]);
#endif
        arrivals.emplace_back(packet_index, w);
        return;
      }
      ++result.retransmissions;
      ++pk_retries[packet_index];
      if (faults != nullptr && pk_retries[packet_index] > faults->max_retries) {
        mark_lost(packet_index);
        --undelivered;
        return;
      }
      const std::uint32_t shift = std::min<std::uint32_t>(pk_retries[packet_index], 6u);
      const std::uint32_t backoff =
          faults == nullptr ? 1u : std::max(1u, faults->backoff_base << shift);
      UPN_OBS_COUNT("routing.sync.backoff_delays", 1);
      UPN_OBS_HIST("routing.sync.backoff_steps", backoff);
      delayed.push_back(DelayedPacket{step + backoff, packet_index, v});
    };

    if (port_model_ == PortModel::kMultiPort) {
      // MultiPort kernel: every occupied directed-link slot of every
      // occupied node moves its head packet -- a single branch-light sweep
      // over the flat queue-cursor array in CSR order.
      for (NodeId v = 0; v < n; ++v) {
        if (buffered[v] == 0) continue;
        const std::uint32_t hi = off[v + 1];
        for (std::uint32_t slot = off[v]; slot < hi; ++slot) {
          if (queue[slot].head == kNoIndex) continue;
          move_packet(v, slot, adj[slot]);
        }
      }
    } else {
      // SinglePort matching pass: transfers form a matching; a node either
      // sends or receives.  Greedy maximal matching with a rotating scan
      // start for fairness, batched over the flat busy/buffered/rr arrays.
      std::fill(busy.begin(), busy.end(), 0);
      // Rotations below are increment-and-wrap rather than modulo: this loop
      // runs n times per step and integer division would dominate it.
      NodeId v = static_cast<NodeId>(step % std::max(1u, n));
      for (std::uint32_t scan = 0; scan < n; ++scan, v = (v + 1 == n ? 0 : v + 1)) {
        if (busy[v] || buffered[v] == 0) continue;
        const std::uint32_t lo = off[v];
        const std::uint32_t degree = off[v + 1] - lo;
        // Round-robin over ports so no queue starves.
        std::uint32_t port = rr_cursor[v];
        for (std::uint32_t offs = 0; offs < degree;
             ++offs, port = (port + 1 == degree ? 0 : port + 1)) {
          const std::uint32_t slot = lo + port;
          if (queue[slot].head == kNoIndex || busy[adj[slot]]) continue;
          busy[v] = 1;
          busy[adj[slot]] = 1;
          rr_cursor[v] = (port + 1 == degree ? 0 : port + 1);
          move_packet(v, slot, adj[slot]);
          break;
        }
      }
    }

    for (const auto& [packet_index, at] : arrivals) {
      switch (place(packet_index, at, false)) {
        case Placement::kDelivered:
          packets[packet_index].delivered_at = step + 1;
          --undelivered;
          break;
        case Placement::kQueued:
          break;
        case Placement::kLost:
          mark_lost(packet_index);
          --undelivered;
          break;
      }
    }
    std::uint32_t step_max_queue = 0;
    for (NodeId v = 0; v < n; ++v) {
      step_max_queue = std::max(step_max_queue, buffered[v]);
    }
    result.max_queue = std::max(result.max_queue, step_max_queue);
    // Queue-depth-per-step distribution: bucket adds commute, so the merged
    // histogram is identical for serial and pool-swept callers.
    UPN_OBS_HIST("routing.sync.step_max_queue", step_max_queue);
    ++step;
  }

  result.steps = step;
  for (std::uint32_t i = 0; i < num_packets; ++i) packets[i].retries = pk_retries[i];
  result.packets = std::move(packets);
  UPN_ENSURE(result.steps <= max_steps, "router must respect its step budget");
  std::uint64_t delivered = 0;
  for (const Packet& p : result.packets) {
    if (p.delivered_at >= 0) ++delivered;
  }
  UPN_ENSURE(delivered + result.packets_lost == result.packets.size(),
             "every packet is delivered or accounted lost");
  UPN_ENSURE(faults != nullptr || result.packets_lost == 0,
             "fault-free routing cannot lose packets");
  UPN_OBS_COUNT("routing.sync.steps", result.steps);
  UPN_OBS_COUNT("routing.sync.transfers", result.total_transfers);
  UPN_OBS_COUNT("routing.sync.retransmissions", result.retransmissions);
  UPN_OBS_COUNT("routing.sync.reroutes", result.reroutes);
  UPN_OBS_COUNT("routing.sync.packets_lost", result.packets_lost);
  UPN_OBS_GAUGE_MAX("routing.sync.max_queue_depth", result.max_queue);
  return result;
}

RouteTimeEstimate measure_route_time(const Graph& host, std::uint32_t h,
                                     RoutingPolicy& policy, PortModel port_model,
                                     std::uint32_t instances, Rng& rng) {
  SyncRouter router{host, port_model};
  RouteTimeEstimate estimate;
  double sum = 0.0;
  for (std::uint32_t i = 0; i < instances; ++i) {
    const HhProblem problem = random_h_relation(host.num_nodes(), h, rng);
    std::vector<Packet> packets;
    packets.reserve(problem.size());
    for (const Demand& d : problem.demands()) {
      Packet p;
      p.src = d.src;
      p.dst = d.dst;
      p.via = d.dst;
      packets.push_back(p);
    }
    const RouteResult result = router.route(std::move(packets), policy);
    estimate.worst_steps = std::max(estimate.worst_steps, result.steps);
    sum += result.steps;
  }
  estimate.mean_steps = instances == 0 ? 0.0 : sum / instances;
  return estimate;
}

}  // namespace upn
