#include "src/routing/router.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "src/routing/hh_problem.hpp"
#include "src/util/rng.hpp"

namespace upn {

void RoutingPolicy::prepare(const Graph& /*graph*/, std::vector<Packet>& /*packets*/) {}

SyncRouter::SyncRouter(const Graph& graph, PortModel port_model)
    : graph_(&graph), port_model_(port_model) {}

namespace {

/// Per-node FIFO queues, one per outgoing port (= neighbor index).
struct NodeState {
  std::vector<std::deque<std::uint32_t>> ports;  // packet indices
  std::uint32_t buffered = 0;
  std::uint32_t rr_cursor = 0;  // round-robin port scan start (single-port)
};

}  // namespace

RouteResult SyncRouter::route(std::vector<Packet> packets, RoutingPolicy& policy,
                              bool record_transfers, std::uint32_t max_steps) {
  const Graph& g = *graph_;
  const std::uint32_t n = g.num_nodes();
  policy.prepare(g, packets);

  RouteResult result;
  std::vector<NodeState> nodes(n);
  for (NodeId v = 0; v < n; ++v) nodes[v].ports.resize(g.degree(v));

  // Port index of neighbor `to` within `from`'s sorted adjacency.
  auto port_of = [&g](NodeId from, NodeId to) -> std::uint32_t {
    const auto nbrs = g.neighbors(from);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    if (it == nbrs.end() || *it != to) {
      throw std::logic_error{"SyncRouter: policy returned a non-neighbor"};
    }
    return static_cast<std::uint32_t>(it - nbrs.begin());
  };

  std::uint32_t undelivered = 0;

  // A packet has just arrived (or started) at `at`: deliver, advance its
  // Valiant phase, or enqueue it on the port the policy selects.
  auto place = [&](std::uint32_t packet_index, NodeId at) {
    Packet& p = packets[packet_index];
    if (p.phase == 0 && at == p.via) p.phase = 1;
    if (at == p.dst && p.phase == 1) {
      return true;  // delivered
    }
    const NodeId next = policy.next_hop(g, at, p);
    nodes[at].ports[port_of(at, next)].push_back(packet_index);
    ++nodes[at].buffered;
    return false;
  };

  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    packets[i].id = i;
    packets[i].delivered_at = -1;
    if (packets[i].phase == 1 && packets[i].src == packets[i].dst) {
      packets[i].delivered_at = 0;
    } else if (!place(i, packets[i].src)) {
      ++undelivered;
    } else {
      packets[i].delivered_at = 0;
    }
  }
  for (NodeId v = 0; v < n; ++v) result.max_queue = std::max(result.max_queue, nodes[v].buffered);

  std::uint32_t step = 0;
  std::vector<std::pair<std::uint32_t, NodeId>> arrivals;  // (packet, node)
  std::vector<char> busy(n, 0);
  while (undelivered > 0) {
    if (step >= max_steps) {
      throw std::runtime_error{"SyncRouter::route: step limit exceeded (livelock?)"};
    }
    arrivals.clear();

    if (port_model_ == PortModel::kMultiPort) {
      // Every directed link moves one packet.
      for (NodeId v = 0; v < n; ++v) {
        const auto nbrs = g.neighbors(v);
        for (std::uint32_t port = 0; port < nbrs.size(); ++port) {
          auto& queue = nodes[v].ports[port];
          if (queue.empty()) continue;
          const std::uint32_t packet_index = queue.front();
          queue.pop_front();
          --nodes[v].buffered;
          arrivals.emplace_back(packet_index, nbrs[port]);
          if (record_transfers) {
            result.transfers.push_back(Transfer{step, v, nbrs[port], packet_index});
          }
          ++result.total_transfers;
        }
      }
    } else {
      // Single-port: transfers form a matching; a node either sends or
      // receives.  Greedy maximal matching with a rotating scan start for
      // fairness.
      std::fill(busy.begin(), busy.end(), 0);
      const NodeId offset = static_cast<NodeId>(step % std::max(1u, n));
      for (std::uint32_t scan = 0; scan < n; ++scan) {
        const NodeId v = static_cast<NodeId>((scan + offset) % n);
        if (busy[v] || nodes[v].buffered == 0) continue;
        const auto nbrs = g.neighbors(v);
        const std::uint32_t degree = static_cast<std::uint32_t>(nbrs.size());
        // Round-robin over ports so no queue starves.
        for (std::uint32_t offs = 0; offs < degree; ++offs) {
          const std::uint32_t port = (nodes[v].rr_cursor + offs) % degree;
          if (nodes[v].ports[port].empty() || busy[nbrs[port]]) continue;
          const std::uint32_t packet_index = nodes[v].ports[port].front();
          nodes[v].ports[port].pop_front();
          --nodes[v].buffered;
          busy[v] = 1;
          busy[nbrs[port]] = 1;
          nodes[v].rr_cursor = (port + 1) % degree;
          arrivals.emplace_back(packet_index, nbrs[port]);
          if (record_transfers) {
            result.transfers.push_back(Transfer{step, v, nbrs[port], packet_index});
          }
          ++result.total_transfers;
          break;
        }
      }
    }

    for (const auto& [packet_index, at] : arrivals) {
      if (place(packet_index, at)) {
        packets[packet_index].delivered_at = step + 1;
        --undelivered;
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      result.max_queue = std::max(result.max_queue, nodes[v].buffered);
    }
    ++step;
  }

  result.steps = step;
  result.packets = std::move(packets);
  return result;
}

RouteTimeEstimate measure_route_time(const Graph& host, std::uint32_t h,
                                     RoutingPolicy& policy, PortModel port_model,
                                     std::uint32_t instances, Rng& rng) {
  SyncRouter router{host, port_model};
  RouteTimeEstimate estimate;
  double sum = 0.0;
  for (std::uint32_t i = 0; i < instances; ++i) {
    const HhProblem problem = random_h_relation(host.num_nodes(), h, rng);
    std::vector<Packet> packets;
    packets.reserve(problem.size());
    for (const Demand& d : problem.demands()) {
      Packet p;
      p.src = d.src;
      p.dst = d.dst;
      p.via = d.dst;
      packets.push_back(p);
    }
    const RouteResult result = router.route(std::move(packets), policy);
    estimate.worst_steps = std::max(estimate.worst_steps, result.steps);
    sum += result.steps;
  }
  estimate.mean_steps = instances == 0 ? 0.0 : sum / instances;
  return estimate;
}

}  // namespace upn
