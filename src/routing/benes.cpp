#include "src/routing/benes.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/util/contracts.hpp"
#include "src/util/math.hpp"

namespace upn {

namespace {

/// Waksman switch assignment, processed one depth at a time.  At depth t the
/// packets sit in contiguous segments of size n>>t inside ids/lin/lout; each
/// segment is 2-colored (input partners and output partners must take
/// different subnetworks), the chosen bit recorded in choice[id*d + t], and
/// the segment stably partitioned into its two half-size subnetworks for the
/// next depth.  Identical colors and segment orders to the natural recursion,
/// but every scratch buffer is allocated once and reused across depths.
void solve(std::uint32_t n, std::uint32_t d, std::vector<std::uint32_t>& ids,
           std::vector<std::uint32_t>& lin, std::vector<std::uint32_t>& lout,
           std::vector<std::uint8_t>& choice) {
  std::vector<std::uint32_t> next_ids(n), next_lin(n), next_lout(n);
  std::vector<std::uint32_t> by_lin(n), by_lout(n);
  std::vector<std::int8_t> color(n);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t depth = 0; depth < d; ++depth) {
    const std::uint32_t size = n >> depth;
    if (size == 2) {
      // Base case: one switch per pair; send each packet to its target bit.
      // Masked to one bit before each cast.
      for (std::uint32_t base = 0; base < n; base += 2) {
        choice[ids[base] * d + depth] = static_cast<std::uint8_t>(lout[base] & 1u);          // upn-lint-allow(narrowing-cast)
        choice[ids[base + 1] * d + depth] = static_cast<std::uint8_t>(lout[base + 1] & 1u);  // upn-lint-allow(narrowing-cast)
      }
      break;
    }
    for (std::uint32_t base = 0; base < n; base += size) {
      // Positions of packets by local input row and by local output row,
      // local to this segment.
      for (std::uint32_t x = 0; x < size; ++x) {
        by_lin[lin[base + x]] = x;
        by_lout[lout[base + x]] = x;
      }
      std::fill(color.begin(), color.begin() + size, std::int8_t{-1});
      for (std::uint32_t seed = 0; seed < size; ++seed) {
        if (color[seed] != -1) continue;
        color[seed] = 0;
        stack.push_back(seed);
        while (!stack.empty()) {
          const std::uint32_t x = stack.back();
          stack.pop_back();
          const std::uint32_t partners[2] = {by_lin[lin[base + x] ^ 1u],
                                             by_lout[lout[base + x] ^ 1u]};
          for (const std::uint32_t y : partners) {
            if (color[y] == -1) {
              UPN_REQUIRE(color[x] == 0 || color[x] == 1);
              color[y] = static_cast<std::int8_t>(1 - color[x]);
              stack.push_back(y);
            } else if (color[y] == color[x]) {
              throw std::logic_error{"benes_route: constraint cycle is not 2-colorable"};
            }
          }
        }
      }
      // Record choices and stably partition into the two half subnetworks.
      std::uint32_t out[2] = {base, base + size / 2};
      for (std::uint32_t x = 0; x < size; ++x) {
        const int s = color[x];
        UPN_REQUIRE(s == 0 || s == 1);
        choice[ids[base + x] * d + depth] = static_cast<std::uint8_t>(s);
        const std::uint32_t at = out[s]++;
        next_ids[at] = ids[base + x];
        next_lin[at] = lin[base + x] >> 1;
        next_lout[at] = lout[base + x] >> 1;
      }
    }
    ids.swap(next_ids);
    lin.swap(next_lin);
    lout.swap(next_lout);
  }
}

}  // namespace

BenesPaths benes_route(const std::vector<std::uint32_t>& perm) {
  const auto n = static_cast<std::uint32_t>(perm.size());
  if (n < 2 || !is_power_of_two(n)) {
    throw std::invalid_argument{"benes_route: size must be a power of two >= 2"};
  }
  const std::uint32_t d = floor_log2(n);
  {
    std::vector<char> seen(n, 0);
    for (const std::uint32_t target : perm) {
      if (target >= n || seen[target]) {
        throw std::invalid_argument{"benes_route: input is not a permutation"};
      }
      seen[target] = 1;
    }
  }

  std::vector<std::uint8_t> choice(static_cast<std::size_t>(n) * d, 0);
  {
    std::vector<std::uint32_t> ids(n), lin(n), lout(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ids[i] = i;
      lin[i] = i;
      lout[i] = perm[i];
    }
    solve(n, d, ids, lin, lout, choice);
  }

  // Reconstruct row positions per wire level.
  // Forward level l (0..d):   bits [0, l) are the chosen subnetwork bits,
  //                           bits [l, d) still come from the input row.
  // Backward level d+u (1..d): bits [d-u, d) already equal the target's,
  //                           bits [0, d-u) are still the chosen bits.
  BenesPaths paths;
  paths.dimension = d;
  paths.rows.assign(n, std::vector<std::uint32_t>(2 * d + 1, 0));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t chosen = 0;
    for (std::uint32_t j = 0; j < d; ++j) {
      chosen |= static_cast<std::uint32_t>(choice[static_cast<std::size_t>(i) * d + j]) << j;
    }
    for (std::uint32_t level = 0; level <= d; ++level) {
      const std::uint32_t low_mask = (level == 0) ? 0u : ((1u << level) - 1u);
      paths.rows[i][level] = (chosen & low_mask) | (i & ~low_mask);
    }
    for (std::uint32_t u = 1; u <= d; ++u) {
      const std::uint32_t high_mask = ~((1u << (d - u)) - 1u) & (n - 1u);
      paths.rows[i][d + u] = (perm[i] & high_mask) | (chosen & ~high_mask & (n - 1u));
    }
  }
  return paths;
}

bool validate_benes_paths(const BenesPaths& paths, const std::vector<std::uint32_t>& perm) {
  const std::uint32_t d = paths.dimension;
  const std::uint32_t n = 1u << d;
  if (paths.rows.size() != n || perm.size() != n) return false;
  std::vector<char> seen(n);
  for (std::uint32_t level = 0; level <= 2 * d; ++level) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t row = paths.rows[i][level];
      if (row >= n || seen[row]) return false;  // node collision
      seen[row] = 1;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (paths.rows[i][0] != i || paths.rows[i][2 * d] != perm[i]) return false;
    for (std::uint32_t level = 0; level < 2 * d; ++level) {
      const std::uint32_t allowed_bit = level < d ? level : 2 * d - 1 - level;
      const std::uint32_t delta = paths.rows[i][level] ^ paths.rows[i][level + 1];
      if (delta != 0 && delta != (1u << allowed_bit)) return false;
    }
  }
  return true;
}

}  // namespace upn
