#include "src/routing/benes.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/util/contracts.hpp"
#include "src/util/math.hpp"

namespace upn {

namespace {

/// Recursive Waksman switch assignment.  `ids` are packet indices; `lin` /
/// `lout` their local input/output rows within this subnetwork; `depth` is
/// the recursion depth (the global bit being decided).  Writes the chosen
/// subnetwork bit into choice[packet][depth].
void solve(const std::vector<std::uint32_t>& ids, const std::vector<std::uint32_t>& lin,
           const std::vector<std::uint32_t>& lout, std::uint32_t depth,
           std::vector<std::vector<std::uint8_t>>& choice) {
  const std::size_t size = ids.size();
  if (size == 2) {
    // Base case: one switch; send each packet to its target bit.
    // Masked to one bit before each cast.
    choice[ids[0]][depth] = static_cast<std::uint8_t>(lout[0] & 1u);  // upn-lint-allow(narrowing-cast)
    choice[ids[1]][depth] = static_cast<std::uint8_t>(lout[1] & 1u);  // upn-lint-allow(narrowing-cast)
    return;
  }

  // Positions of packets by local input row and by local output row.
  std::vector<std::uint32_t> by_lin(size), by_lout(size);
  for (std::uint32_t x = 0; x < size; ++x) {
    by_lin[lin[x]] = x;
    by_lout[lout[x]] = x;
  }

  // 2-color the constraint cycles: input partners and output partners must
  // take different subnetworks.
  std::vector<std::int8_t> color(size, -1);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t seed = 0; seed < size; ++seed) {
    if (color[seed] != -1) continue;
    color[seed] = 0;
    stack.push_back(seed);
    while (!stack.empty()) {
      const std::uint32_t x = stack.back();
      stack.pop_back();
      const std::uint32_t partners[2] = {by_lin[lin[x] ^ 1u], by_lout[lout[x] ^ 1u]};
      for (const std::uint32_t y : partners) {
        if (color[y] == -1) {
          UPN_REQUIRE(color[x] == 0 || color[x] == 1);
          color[y] = static_cast<std::int8_t>(1 - color[x]);
          stack.push_back(y);
        } else if (color[y] == color[x]) {
          throw std::logic_error{"benes_route: constraint cycle is not 2-colorable"};
        }
      }
    }
  }

  // Record choices and split into the two half-size subnetworks.
  std::vector<std::uint32_t> sub_ids[2], sub_lin[2], sub_lout[2];
  for (int s = 0; s < 2; ++s) {
    sub_ids[s].reserve(size / 2);
    sub_lin[s].reserve(size / 2);
    sub_lout[s].reserve(size / 2);
  }
  for (std::uint32_t x = 0; x < size; ++x) {
    const int s = color[x];
    UPN_REQUIRE(s == 0 || s == 1);
    choice[ids[x]][depth] = static_cast<std::uint8_t>(s);
    sub_ids[s].push_back(ids[x]);
    sub_lin[s].push_back(lin[x] >> 1);
    sub_lout[s].push_back(lout[x] >> 1);
  }
  for (int s = 0; s < 2; ++s) {
    solve(sub_ids[s], sub_lin[s], sub_lout[s], depth + 1, choice);
  }
}

}  // namespace

BenesPaths benes_route(const std::vector<std::uint32_t>& perm) {
  const auto n = static_cast<std::uint32_t>(perm.size());
  if (n < 2 || !is_power_of_two(n)) {
    throw std::invalid_argument{"benes_route: size must be a power of two >= 2"};
  }
  const std::uint32_t d = floor_log2(n);
  {
    std::vector<char> seen(n, 0);
    for (const std::uint32_t target : perm) {
      if (target >= n || seen[target]) {
        throw std::invalid_argument{"benes_route: input is not a permutation"};
      }
      seen[target] = 1;
    }
  }

  std::vector<std::vector<std::uint8_t>> choice(n, std::vector<std::uint8_t>(d, 0));
  {
    std::vector<std::uint32_t> ids(n), lin(n), lout(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ids[i] = i;
      lin[i] = i;
      lout[i] = perm[i];
    }
    solve(ids, lin, lout, 0, choice);
  }

  // Reconstruct row positions per wire level.
  // Forward level l (0..d):   bits [0, l) are the chosen subnetwork bits,
  //                           bits [l, d) still come from the input row.
  // Backward level d+u (1..d): bits [d-u, d) already equal the target's,
  //                           bits [0, d-u) are still the chosen bits.
  BenesPaths paths;
  paths.dimension = d;
  paths.rows.assign(n, std::vector<std::uint32_t>(2 * d + 1, 0));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t chosen = 0;
    for (std::uint32_t j = 0; j < d; ++j) {
      chosen |= static_cast<std::uint32_t>(choice[i][j]) << j;
    }
    for (std::uint32_t level = 0; level <= d; ++level) {
      const std::uint32_t low_mask = (level == 0) ? 0u : ((1u << level) - 1u);
      paths.rows[i][level] = (chosen & low_mask) | (i & ~low_mask);
    }
    for (std::uint32_t u = 1; u <= d; ++u) {
      const std::uint32_t high_mask = ~((1u << (d - u)) - 1u) & (n - 1u);
      paths.rows[i][d + u] = (perm[i] & high_mask) | (chosen & ~high_mask & (n - 1u));
    }
  }
  return paths;
}

bool validate_benes_paths(const BenesPaths& paths, const std::vector<std::uint32_t>& perm) {
  const std::uint32_t d = paths.dimension;
  const std::uint32_t n = 1u << d;
  if (paths.rows.size() != n || perm.size() != n) return false;
  std::vector<char> seen(n);
  for (std::uint32_t level = 0; level <= 2 * d; ++level) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t row = paths.rows[i][level];
      if (row >= n || seen[row]) return false;  // node collision
      seen[row] = 1;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (paths.rows[i][0] != i || paths.rows[i][2 * d] != perm[i]) return false;
    for (std::uint32_t level = 0; level < 2 * d; ++level) {
      const std::uint32_t allowed_bit = level < d ? level : 2 * d - 1 - level;
      const std::uint32_t delta = paths.rows[i][level] ^ paths.rows[i][level + 1];
      if (delta != 0 && delta != (1u << allowed_bit)) return false;
    }
  }
  return true;
}

}  // namespace upn
