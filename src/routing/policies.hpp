// Routing policies for the synchronous router.
//
//  * GreedyPolicy  -- forward along a BFS shortest path; ties broken by a
//                     per-packet hash so load spreads over equal-length paths.
//  * ValiantPolicy -- two-phase randomized routing: first to a uniformly
//                     random intermediate node, then to the destination.
//                     Destroys adversarial correlation in the demand pattern;
//                     the classic online technique for h-h routing that
//                     Section 2 invokes for simulating the complete network.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// Lazily built per-destination BFS distance tables shared by policies.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& graph) : graph_(&graph) {}

  /// Distance vector from every node to `dst` (BFS, cached).
  [[nodiscard]] const std::vector<std::uint16_t>& to(NodeId dst);

 private:
  const Graph* graph_;
  std::unordered_map<NodeId, std::vector<std::uint16_t>> cache_;
};

class GreedyPolicy final : public RoutingPolicy {
 public:
  explicit GreedyPolicy(const Graph& graph) : oracle_(graph) {}

  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "greedy"; }

 private:
  DistanceOracle oracle_;
};

class ValiantPolicy final : public RoutingPolicy {
 public:
  ValiantPolicy(const Graph& graph, std::uint64_t seed) : oracle_(graph), rng_(seed) {}

  /// Assigns every packet a uniform random intermediate node.
  void prepare(const Graph& graph, std::vector<Packet>& packets) override;
  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "valiant"; }

 private:
  DistanceOracle oracle_;
  Rng rng_;
};

/// Shared helper: the neighbor of `at` that minimizes distance to `target`,
/// with hash-based tie-breaking among equally good neighbors.
[[nodiscard]] NodeId greedy_next_hop(const Graph& graph, DistanceOracle& oracle, NodeId at,
                                     NodeId target, std::uint32_t salt);

}  // namespace upn
