// Routing policies for the synchronous router.
//
//  * GreedyPolicy  -- forward along a BFS shortest path; ties broken by a
//                     per-packet hash so load spreads over equal-length paths.
//  * ValiantPolicy -- two-phase randomized routing: first to a uniformly
//                     random intermediate node, then to the destination.
//                     Destroys adversarial correlation in the demand pattern;
//                     the classic online technique for h-h routing that
//                     Section 2 invokes for simulating the complete network.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// Lazily built per-destination BFS distance tables shared by policies.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& graph)
      : graph_(&graph),
        masks_(graph.num_nodes() > 0 && graph.num_nodes() <= 8192 &&
               graph.max_degree() <= 8) {}

  /// Distance vector from every node to `dst` (BFS, cached).  The cache is
  /// indexed directly by destination -- one hot next_hop call per packet hop
  /// lands here, so the lookup must be a load, not a hash probe.
  [[nodiscard]] const std::vector<std::uint16_t>& to(NodeId dst) {
    if (dst < cache_.size() && !cache_[dst].empty()) return cache_[dst];
    return compute(dst);
  }

  /// Per-node bitmask of the ports (neighbor ranks) minimizing the distance
  /// to `dst`: bit p of `minimizer_masks(dst)[at]` is set iff neighbors(at)[p]
  /// lies on a shortest at->dst path.  One byte encodes the whole greedy
  /// choice set, so the hot next_hop path costs a single load instead of a
  /// gather over the distance row.  The table is one flat n*n array with a
  /// byte of built-flags per destination -- no per-row vector headers to
  /// chase.  nullptr when a degree exceeds 8 or the graph is too large.
  [[nodiscard]] const std::uint8_t* minimizer_masks(NodeId dst) {
    if (!masks_) return nullptr;
    if (mask_built_.empty() || mask_built_[dst] == 0) static_cast<void>(compute(dst));
    return mask_flat_.data() + static_cast<std::size_t>(dst) * graph_->num_nodes();
  }

 private:
  [[nodiscard]] const std::vector<std::uint16_t>& compute(NodeId dst);

  const Graph* graph_;
  bool masks_;  ///< port masks fit u8 and the flat table fits memory
  std::vector<std::vector<std::uint16_t>> cache_;  // by dst; empty = unbuilt
  std::vector<std::uint8_t> mask_flat_;   // n*n, row dst = masks toward dst
  std::vector<std::uint8_t> mask_built_;  // by dst; 1 = row of mask_flat_ valid
};

class GreedyPolicy final : public RoutingPolicy {
 public:
  explicit GreedyPolicy(const Graph& graph) : oracle_(graph) {}

  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "greedy"; }

  /// The policy's distance oracle, exposed so the router's devirtualized
  /// fast path can call greedy_next_port() without the virtual dispatch.
  [[nodiscard]] DistanceOracle& oracle() noexcept { return oracle_; }

 private:
  DistanceOracle oracle_;
};

class ValiantPolicy final : public RoutingPolicy {
 public:
  ValiantPolicy(const Graph& graph, std::uint64_t seed) : oracle_(graph), rng_(seed) {}

  /// Assigns every packet a uniform random intermediate node.
  void prepare(const Graph& graph, std::vector<Packet>& packets) override;
  [[nodiscard]] NodeId next_hop(const Graph& graph, NodeId at, const Packet& packet) override;
  [[nodiscard]] std::string name() const override { return "valiant"; }

  /// See GreedyPolicy::oracle().
  [[nodiscard]] DistanceOracle& oracle() noexcept { return oracle_; }

 private:
  DistanceOracle oracle_;
  Rng rng_;
};

/// Shared helper: the neighbor of `at` that minimizes distance to `target`,
/// with hash-based tie-breaking among equally good neighbors.
[[nodiscard]] NodeId greedy_next_hop(const Graph& graph, DistanceOracle& oracle, NodeId at,
                                     NodeId target, std::uint32_t salt);

/// Port-index variant of greedy_next_hop: returns p such that
/// graph.neighbors(at)[p] == greedy_next_hop(...).  Graphs are simple (no
/// parallel edges), so the chosen neighbor's port is unique and the caller
/// can derive its directed-link slot without re-scanning the adjacency row.
[[nodiscard]] std::uint32_t greedy_next_port(const Graph& graph, DistanceOracle& oracle,
                                             NodeId at, NodeId target, std::uint32_t salt);

}  // namespace upn
