// Off-line scheduling of fixed path systems on arbitrary hosts.
//
// The off-line butterfly router exploits Benes structure; on a general host
// the classic approach fixes one path per packet and schedules link access.
// With congestion C (max packets over one directed link) and dilation D
// (max path length), trivial scheduling gives C*D and Leighton-Maggs-Rao
// prove O(C + D) is always achievable.  We implement the practical greedy:
// per step, every directed link forwards the packet with the longest
// residual path (farthest-to-go first).  The measured makespan lands near
// C + D on the workloads of interest, giving a deterministic, precomputable
// schedule for the "permutations known in advance" of Theorem 2.1 on ANY
// host -- the generalization ablation of the butterfly-specific machinery.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/routing/hh_problem.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct PathSchedule {
  std::uint32_t congestion = 0;   ///< C of the chosen path system
  std::uint32_t dilation = 0;     ///< D of the chosen path system
  std::uint32_t makespan = 0;     ///< steps of the greedy schedule
  std::uint64_t total_moves = 0;
  /// moves[step] = (packet, from, to) triples, one per directed link.
  std::vector<std::vector<std::array<std::uint32_t, 3>>> moves;
};

/// Builds shortest paths (BFS with hashed tie-breaking) for every demand and
/// greedily schedules them.  Throws if the host is disconnected.
[[nodiscard]] PathSchedule schedule_paths(const Graph& host, const HhProblem& problem);

/// Replays the schedule: every move follows the packet's position along a
/// host edge, no directed link is used twice per step, and all packets end
/// at their destinations.
[[nodiscard]] bool validate_path_schedule(const Graph& host, const HhProblem& problem,
                                          const PathSchedule& schedule);

}  // namespace upn
