#include "src/routing/policies.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "src/topology/properties.hpp"
#include "src/util/contracts.hpp"

namespace upn {

const std::vector<std::uint16_t>& DistanceOracle::compute(NodeId dst) {
  const std::size_t n = graph_->num_nodes();
  if (cache_.size() <= dst) {
    cache_.resize(n);
    if (masks_) {
      mask_flat_.resize(n * n);
      mask_built_.resize(n, 0);
    }
  }
  const auto wide = bfs_distances(*graph_, dst);
  std::vector<std::uint16_t> narrow(wide.size());
  for (std::size_t v = 0; v < wide.size(); ++v) {
    if (wide[v] == kUnreachable) {
      throw std::invalid_argument{"DistanceOracle: graph must be connected"};
    }
    UPN_REQUIRE(wide[v] <= std::numeric_limits<std::uint16_t>::max());
    narrow[v] = static_cast<std::uint16_t>(wide[v]);
  }
  if (masks_ && mask_built_[dst] == 0) {
    std::uint8_t* mask = mask_flat_.data() + static_cast<std::size_t>(dst) * n;
    for (NodeId at = 0; at < wide.size(); ++at) {
      const auto nbrs = graph_->neighbors(at);
      std::uint16_t best = std::numeric_limits<std::uint16_t>::max();
      for (const NodeId u : nbrs) best = std::min(best, narrow[u]);
      std::uint8_t bits = 0;
      for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
        // p < degree <= 8, so the bit fits u8:
        if (narrow[nbrs[p]] == best) bits |= static_cast<std::uint8_t>(1u << p);  // upn-lint-allow(narrowing-cast)
      }
      mask[at] = bits;
    }
    mask_built_[dst] = 1;
  }
  cache_[dst] = std::move(narrow);
  return cache_[dst];
}

std::uint32_t greedy_next_port(const Graph& graph, DistanceOracle& oracle, NodeId at,
                               NodeId target, std::uint32_t salt) {
  // upn-contract-waive(per-hop hot path; node bounds are the router's placement invariant, and an empty minimizer set throws below)
  const auto nbrs = graph.neighbors(at);
  // Fast path: the oracle's one-byte port mask names the minimizer set in
  // neighbor-rank order, replacing the distance-row gather below with a
  // single load.  Both paths choose the identical port.
  if (const std::uint8_t* masks = oracle.minimizer_masks(target)) {
    const std::uint8_t mask = masks[at];
    const auto count = static_cast<std::uint32_t>(std::popcount(mask));
    if (count == 1) return static_cast<std::uint32_t>(std::countr_zero(mask));
    if (count > 1) {
      const std::uint64_t hash = mix64((static_cast<std::uint64_t>(salt) << 32) | at);
      // hash % count, but tie counts are tiny and usually powers of two
      // (butterfly/hypercube), where a mask beats the 64-bit division.
      const std::uint32_t skip =
          std::has_single_bit(count) ? static_cast<std::uint32_t>(hash & (count - 1))
                                     : static_cast<std::uint32_t>(hash % count);
      std::uint8_t m = mask;
      // Clearing the lowest set bit keeps the value within u8:
      for (std::uint32_t c = skip; c > 0; --c) m = static_cast<std::uint8_t>(m & (m - 1));  // upn-lint-allow(narrowing-cast)
      return static_cast<std::uint32_t>(std::countr_zero(m));
    }
    throw std::logic_error{"greedy_next_hop: no neighbor found"};
  }
  const auto& dist = oracle.to(target);
  std::uint16_t best = std::numeric_limits<std::uint16_t>::max();
  std::uint32_t count = 0;
  std::uint32_t first = 0;
  for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
    if (dist[nbrs[p]] < best) {
      best = dist[nbrs[p]];
      count = 1;
      first = p;
    } else if (dist[nbrs[p]] == best) {
      ++count;
    }
  }
  // Unique minimizer: hash % 1 == 0 always selects it, so skip the hash and
  // the second scan on this (most common) path.
  if (count == 1) return first;
  // Pick the (hash % count)-th minimizer: deterministic per packet, but
  // different packets spread across the tied shortest-path neighbors.
  const std::uint64_t hash = mix64((static_cast<std::uint64_t>(salt) << 32) | at);
  std::uint32_t skip = static_cast<std::uint32_t>(hash % count);
  for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
    if (dist[nbrs[p]] == best) {
      if (skip == 0) return p;
      --skip;
    }
  }
  throw std::logic_error{"greedy_next_hop: no neighbor found"};
}

NodeId greedy_next_hop(const Graph& graph, DistanceOracle& oracle, NodeId at, NodeId target,
                       std::uint32_t salt) {
  return graph.neighbors(at)[greedy_next_port(graph, oracle, at, target, salt)];
}

NodeId GreedyPolicy::next_hop(const Graph& graph, NodeId at, const Packet& packet) {
  return greedy_next_hop(graph, oracle_, at, packet.current_target(), packet.id);
}

void ValiantPolicy::prepare(const Graph& graph, std::vector<Packet>& packets) {
  for (Packet& p : packets) {
    p.via = static_cast<NodeId>(rng_.below(graph.num_nodes()));
    p.phase = 0;
  }
}

NodeId ValiantPolicy::next_hop(const Graph& graph, NodeId at, const Packet& packet) {
  return greedy_next_hop(graph, oracle_, at, packet.current_target(), packet.id);
}

}  // namespace upn
