#include "src/routing/policies.hpp"

#include <limits>
#include <stdexcept>

#include "src/topology/properties.hpp"
#include "src/util/contracts.hpp"

namespace upn {

const std::vector<std::uint16_t>& DistanceOracle::to(NodeId dst) {
  auto it = cache_.find(dst);
  if (it != cache_.end()) return it->second;
  const auto wide = bfs_distances(*graph_, dst);
  std::vector<std::uint16_t> narrow(wide.size());
  for (std::size_t v = 0; v < wide.size(); ++v) {
    if (wide[v] == kUnreachable) {
      throw std::invalid_argument{"DistanceOracle: graph must be connected"};
    }
    UPN_REQUIRE(wide[v] <= std::numeric_limits<std::uint16_t>::max());
    narrow[v] = static_cast<std::uint16_t>(wide[v]);
  }
  return cache_.emplace(dst, std::move(narrow)).first->second;
}

NodeId greedy_next_hop(const Graph& graph, DistanceOracle& oracle, NodeId at, NodeId target,
                       std::uint32_t salt) {
  const auto& dist = oracle.to(target);
  const auto nbrs = graph.neighbors(at);
  std::uint16_t best = std::numeric_limits<std::uint16_t>::max();
  std::uint32_t count = 0;
  for (const NodeId u : nbrs) {
    if (dist[u] < best) {
      best = dist[u];
      count = 1;
    } else if (dist[u] == best) {
      ++count;
    }
  }
  // Pick the (hash % count)-th minimizer: deterministic per packet, but
  // different packets spread across the tied shortest-path neighbors.
  const std::uint64_t hash = mix64((static_cast<std::uint64_t>(salt) << 32) | at);
  std::uint32_t skip = static_cast<std::uint32_t>(hash % count);
  for (const NodeId u : nbrs) {
    if (dist[u] == best) {
      if (skip == 0) return u;
      --skip;
    }
  }
  throw std::logic_error{"greedy_next_hop: no neighbor found"};
}

NodeId GreedyPolicy::next_hop(const Graph& graph, NodeId at, const Packet& packet) {
  return greedy_next_hop(graph, oracle_, at, packet.current_target(), packet.id);
}

void ValiantPolicy::prepare(const Graph& graph, std::vector<Packet>& packets) {
  for (Packet& p : packets) {
    p.via = static_cast<NodeId>(rng_.below(graph.num_nodes()));
    p.phase = 0;
  }
}

NodeId ValiantPolicy::next_hop(const Graph& graph, NodeId at, const Packet& packet) {
  return greedy_next_hop(graph, oracle_, at, packet.current_target(), packet.id);
}

}  // namespace upn
