#include "src/core/embedding_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/embedding.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_embedding: line " + std::to_string(line) + ": " + what};
}

std::uint32_t parse_u32(const std::string& token, std::size_t line_no, const char* what) {
  if (token.empty() || token.size() > 10) fail(line_no, std::string{what} + ": bad field");
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail(line_no, std::string{what} + ": not a non-negative integer ('" + token + "')");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    fail(line_no, std::string{what} + ": overflows uint32_t");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

void write_embedding(std::ostream& os, const std::vector<NodeId>& embedding,
                     std::uint32_t num_hosts) {
  const std::uint32_t load = embedding_load(embedding, num_hosts);
  os << "upn-embedding 1 " << embedding.size() << ' ' << num_hosts << ' ' << load << '\n';
  for (const NodeId q : embedding) os << q << '\n';
}

StoredEmbedding read_embedding(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  std::istringstream header{line};
  std::string magic, version, n_tok, m_tok, load_tok, extra;
  if (!(header >> magic >> version >> n_tok >> m_tok >> load_tok) || (header >> extra) ||
      magic != "upn-embedding" || version != "1") {
    fail(line_no, "bad header (expected 'upn-embedding 1 <n> <m> <load>')");
  }
  const std::uint32_t n = parse_u32(n_tok, line_no, "guest count");
  StoredEmbedding stored;
  stored.num_hosts = parse_u32(m_tok, line_no, "host count");
  stored.declared_load = parse_u32(load_tok, line_no, "declared load");
  if (n > kMaxEmbeddingDimension || stored.num_hosts > kMaxEmbeddingDimension) {
    fail(line_no, "header count exceeds limit");
  }
  if (stored.num_hosts == 0 && n > 0) fail(line_no, "n > 0 requires m > 0");
  stored.map.reserve(n);
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream fields{line};
    std::string token;
    while (fields >> token) {
      if (stored.map.size() == n) fail(line_no, "more rows than the declared n");
      const std::uint32_t q = parse_u32(token, line_no, "host id");
      if (q >= stored.num_hosts) fail(line_no, "host id out of range");
      stored.map.push_back(q);
    }
  }
  if (stored.map.size() != n) fail(line_no + 1, "fewer rows than the declared n");
  UPN_ENSURE(stored.map.size() == n, "parsed embedding must match its header");
  return stored;
}

}  // namespace upn
