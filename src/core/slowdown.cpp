#include "src/core/slowdown.hpp"

#include <cmath>

#include "src/core/embedding.hpp"
#include "src/topology/butterfly.hpp"
#include "src/util/contracts.hpp"

namespace upn {

SlowdownRow measure_slowdown(const Graph& guest, const Graph& host,
                             std::uint32_t guest_steps, Rng& rng, PortModel port_model) {
  const std::uint32_t n = guest.num_nodes();
  const std::uint32_t m = host.num_nodes();
  UPN_REQUIRE(n > 0 && m > 0 && guest_steps > 0);
  UniversalSimulator simulator{guest, host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.port_model = port_model;
  options.seed = rng();
  const UniversalSimResult result = simulator.run(guest_steps, options);

  SlowdownRow row;
  row.n = n;
  row.m = m;
  row.load = result.load;
  row.slowdown = result.slowdown;
  row.inefficiency = result.inefficiency;
  row.load_bound = static_cast<double>(n) / m;
  row.paper_bound = row.load_bound * std::log2(static_cast<double>(m));
  row.normalized = row.paper_bound > 0 ? row.slowdown / row.paper_bound : 0.0;
  row.verified = result.configs_match;
  return row;
}

namespace {

std::vector<std::uint32_t> butterfly_sweep_dimensions(const Graph& guest,
                                                      std::uint32_t max_host_size) {
  std::vector<std::uint32_t> dimensions;
  for (std::uint32_t d = 2;; ++d) {
    const std::uint64_t size = static_cast<std::uint64_t>(d + 1) << d;
    if (size > max_host_size || size > guest.num_nodes()) break;
    dimensions.push_back(d);
  }
  return dimensions;
}

}  // namespace

std::vector<SlowdownRow> sweep_butterfly_hosts(const Graph& guest, std::uint32_t guest_steps,
                                               std::uint32_t max_host_size, Rng& rng) {
  UPN_REQUIRE(guest.num_nodes() > 0 && guest_steps > 0);
  std::vector<SlowdownRow> rows;
  for (const std::uint32_t d : butterfly_sweep_dimensions(guest, max_host_size)) {
    const Graph host = make_butterfly(d);
    rows.push_back(measure_slowdown(guest, host, guest_steps, rng));
  }
  return rows;
}

std::vector<SlowdownRow> sweep_butterfly_hosts_par(const Graph& guest,
                                                   std::uint32_t guest_steps,
                                                   std::uint32_t max_host_size,
                                                   std::uint64_t seed, ThreadPool& pool) {
  UPN_REQUIRE(guest.num_nodes() > 0 && guest_steps > 0);
  const std::vector<std::uint32_t> dimensions =
      butterfly_sweep_dimensions(guest, max_host_size);
  return pool.parallel_map<SlowdownRow>(dimensions.size(), [&](std::size_t i) {
    Rng rng = Rng::stream(seed, i);
    const Graph host = make_butterfly(dimensions[i]);
    return measure_slowdown(guest, host, guest_steps, rng);
  });
}

}  // namespace upn
