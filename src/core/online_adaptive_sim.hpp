// Universal simulation over the online routing regime, under live churn.
//
// UniversalSimulator (core/universal_sim.hpp) realizes Theorem 2.1 on a
// pristine host with an omniscient routing policy.  OnlineAdaptiveSimulator
// runs the SAME two-phase guest simulation -- one packet per crossing guest
// edge, then load computation steps per host -- but sends every packet
// through src/routing/online: host nodes learn routes purely from
// announcement traffic while a FaultPlan kills and heals links mid-run.
//
// The regime trades the theorem's exactness for survival.  When churn eats
// a packet (retries exhausted, endpoint unreachable, step ceiling), the
// receiving guest performs a STALE READ -- it reuses the last configuration
// it ever saw from that neighbor -- instead of aborting, so the simulation
// always completes and degradation is measured, not fatal: `stale_reads`
// counts every such substitution, and `configs_match` reports whether the
// end state still equals the direct execution (it does whenever no read
// went stale).  Slowdown comparisons against the offline optimum and the
// (n/m) log2(m) bound of Theorem 2.1 are bench_online's churn curve.
#pragma once

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/routing/online/online_router.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct OnlineAdaptiveSimOptions {
  OnlineRouterConfig router;           ///< protocol timers, seed, pool
  std::uint32_t warmup_rounds = 4096;  ///< table warmup budget before guest step 1
  std::uint32_t max_comm_steps = 1u << 14;  ///< per guest step; excess = stale reads
  std::uint64_t seed = 0x5eed;         ///< initial guest configurations
};

struct OnlineAdaptiveSimResult {
  std::uint32_t guest_steps = 0;    ///< T
  std::uint32_t host_steps = 0;     ///< T' = comm + compute (warmup reported apart)
  std::uint32_t comm_steps = 0;
  std::uint32_t compute_steps = 0;
  std::uint32_t load = 0;           ///< max guests per host
  std::uint32_t warmup_rounds = 0;  ///< protocol rounds spent converging up front
  bool warmup_stable = false;       ///< tables quiesced within the warmup budget
  std::uint64_t packets_routed = 0;
  std::uint64_t packets_lost = 0;   ///< deliveries churn defeated
  std::uint64_t stale_reads = 0;    ///< neighbor configs substituted from memory
  double slowdown = 0.0;            ///< s = T'/T
  double inefficiency = 0.0;        ///< k = s m / n
  bool configs_match = false;       ///< end state == direct execution
};

class OnlineAdaptiveSimulator {
 public:
  /// `embedding[u]` = host processor simulating guest u.  Graphs and the
  /// plan must outlive the simulator; the plan's churn unfolds on the host
  /// step clock that routing advances.
  OnlineAdaptiveSimulator(const Graph& guest, const Graph& host, std::vector<NodeId> embedding,
                          const FaultPlan& plan);

  /// Simulates T guest steps over the adaptive router.  Never throws on
  /// churn-induced loss; inspect stale_reads / configs_match for damage.
  [[nodiscard]] OnlineAdaptiveSimResult run(std::uint32_t guest_steps,
                                            const OnlineAdaptiveSimOptions& options = {});

  [[nodiscard]] const std::vector<NodeId>& embedding() const noexcept { return embedding_; }

 private:
  const Graph* guest_;
  const Graph* host_;
  const FaultPlan* plan_;
  std::vector<NodeId> embedding_;
  std::uint32_t load_;
};

}  // namespace upn
