// Off-line schedules as Section 3.1 pebble protocols.
//
// The off-line butterfly schedule (offline_butterfly.hpp) is multiport: in
// one step a processor may forward one packet while receiving up to two
// (the forward and backward Benes sweeps cross).  The pebble game allows
// ONE operation per processor per step, so each multiport step is expanded
// into a small number of single-port steps by edge-coloring its transfer
// multigraph: the transfers of a step connect adjacent butterfly levels
// (bipartite) with node degree <= 4, so a greedy coloring needs at most 7
// colors and Koenig guarantees 4 suffice.  The result is a complete,
// machine-validated pebble protocol realizing Theorem 2.1's corollary:
// butterfly + off-line routing, one generate per guest per step.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pebble/protocol.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct OfflineProtocolResult {
  Protocol protocol;
  std::uint32_t multiport_steps_per_guest_step = 0;
  std::uint32_t single_port_steps_per_guest_step = 0;  ///< after coloring
  double expansion_factor = 0.0;  ///< single-port / multiport
};

/// Builds the validated pebble protocol of the off-line universal simulation
/// of `guest` on the dimension-d unwrapped butterfly under `embedding`.
[[nodiscard]] OfflineProtocolResult make_offline_universal_protocol(
    const Graph& guest, std::uint32_t butterfly_dimension,
    const std::vector<NodeId>& embedding, std::uint32_t guest_steps);

}  // namespace upn
