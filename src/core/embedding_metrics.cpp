#include "src/core/embedding_metrics.hpp"

#include <map>
#include <stdexcept>

#include "src/core/embedding.hpp"
#include "src/routing/policies.hpp"

namespace upn {

EmbeddingMetrics analyze_embedding(const Graph& guest, const Graph& host,
                                   const std::vector<NodeId>& embedding) {
  if (embedding.size() != guest.num_nodes()) {
    throw std::invalid_argument{"analyze_embedding: embedding size != guest size"};
  }
  EmbeddingMetrics metrics;
  metrics.load = embedding_load(embedding, host.num_nodes());

  DistanceOracle oracle{host};
  // Edge congestion accumulated over canonical directed-edge keys.  Ordered
  // map so any future per-edge emission iterates deterministically.
  std::map<std::uint64_t, std::uint32_t> edge_load;
  auto edge_key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  std::uint64_t edges = 0;
  std::uint64_t dilation_sum = 0;
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (v < u) continue;  // each guest edge once
      ++edges;
      NodeId at = embedding[u];
      const NodeId target = embedding[v];
      const std::uint32_t distance = oracle.to(target)[at];
      metrics.dilation = std::max(metrics.dilation, distance);
      dilation_sum += distance;
      metrics.total_path_length += distance;
      // Walk one deterministic shortest path, salting ties by the edge id.
      const auto salt = static_cast<std::uint32_t>(edges);
      while (at != target) {
        const NodeId next = greedy_next_hop(host, oracle, at, target, salt);
        ++edge_load[edge_key(at, next)];
        at = next;
      }
    }
  }
  metrics.avg_dilation =
      edges == 0 ? 0.0 : static_cast<double>(dilation_sum) / static_cast<double>(edges);
  std::uint64_t congestion_sum = 0;
  for (const auto& [key, count] : edge_load) {
    metrics.congestion = std::max(metrics.congestion, count);
    congestion_sum += count;
  }
  metrics.avg_congestion = edge_load.empty()
                               ? 0.0
                               : static_cast<double>(congestion_sum) /
                                     static_cast<double>(edge_load.size());
  return metrics;
}

}  // namespace upn
