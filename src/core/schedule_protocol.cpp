#include "src/core/schedule_protocol.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/embedding.hpp"
#include "src/routing/offline_butterfly.hpp"
#include "src/topology/butterfly.hpp"

namespace upn {

namespace {

/// Greedy edge coloring of one multiport step's moves: two moves sharing a
/// processor get different colors.  Returns per-move colors and the count.
std::uint32_t color_moves(const std::vector<const ScheduledMove*>& moves,
                          std::uint32_t num_nodes, std::vector<std::uint32_t>& colors) {
  constexpr std::uint32_t kMaxColors = 16;
  colors.assign(moves.size(), 0);
  // node_used[v] is a bitmask of colors already incident to v.
  std::vector<std::uint32_t> node_used(num_nodes, 0);
  std::uint32_t max_color = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const std::uint32_t used = node_used[moves[i]->from] | node_used[moves[i]->to];
    std::uint32_t color = 0;
    while (color < kMaxColors && ((used >> color) & 1u)) ++color;
    if (color == kMaxColors) {
      throw std::logic_error{"color_moves: degree exceeded expectations"};
    }
    colors[i] = color;
    node_used[moves[i]->from] |= 1u << color;
    node_used[moves[i]->to] |= 1u << color;
    max_color = std::max(max_color, color + 1);
  }
  return max_color;
}

}  // namespace

OfflineProtocolResult make_offline_universal_protocol(const Graph& guest,
                                                      std::uint32_t butterfly_dimension,
                                                      const std::vector<NodeId>& embedding,
                                                      std::uint32_t guest_steps) {
  const ButterflyLayout layout{butterfly_dimension, /*wrapped=*/false};
  const std::uint32_t n = guest.num_nodes();
  const std::uint32_t m = layout.num_nodes();
  if (embedding.size() != n) {
    throw std::invalid_argument{"make_offline_universal_protocol: embedding size mismatch"};
  }

  // The fixed per-step relation: demand d ships guest senders[d]'s pebble.
  HhProblem relation{m};
  std::vector<NodeId> senders;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] == embedding[v]) continue;
      relation.add(embedding[u], embedding[v]);
      senders.push_back(u);
    }
  }
  const OfflineSchedule schedule = route_relation_offline(butterfly_dimension, relation);
  if (!validate_schedule(schedule, relation)) {
    throw std::logic_error{"make_offline_universal_protocol: invalid schedule"};
  }
  const auto guests_of = invert_embedding(embedding, m);
  const std::uint32_t load = embedding_load(embedding, m);

  // Pre-split every multiport step into colored single-port sub-steps; the
  // split is schedule-wide, so compute it once.
  std::vector<std::vector<std::vector<const ScheduledMove*>>> sub_steps;  // [step][color]
  {
    std::size_t i = 0;
    std::vector<std::uint32_t> colors;
    while (i < schedule.moves.size()) {
      const std::uint32_t step = schedule.moves[i].step;
      std::vector<const ScheduledMove*> moves;
      for (; i < schedule.moves.size() && schedule.moves[i].step == step; ++i) {
        moves.push_back(&schedule.moves[i]);
      }
      const std::uint32_t num_colors = color_moves(moves, m, colors);
      std::vector<std::vector<const ScheduledMove*>> by_color(num_colors);
      for (std::size_t j = 0; j < moves.size(); ++j) by_color[colors[j]].push_back(moves[j]);
      sub_steps.push_back(std::move(by_color));
    }
  }
  std::uint32_t single_port_steps = 0;
  for (const auto& by_color : sub_steps) {
    single_port_steps += static_cast<std::uint32_t>(by_color.size());
  }

  OfflineProtocolResult result{Protocol{n, m, guest_steps}, schedule.num_steps,
                               single_port_steps + load, 0.0};
  result.expansion_factor =
      schedule.num_steps == 0
          ? 1.0
          : static_cast<double>(single_port_steps) / schedule.num_steps;

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    // Communication: replay the colored schedule; demand d carries the
    // pebble (senders[d], t-1).
    for (const auto& by_color : sub_steps) {
      for (const auto& matching : by_color) {
        result.protocol.begin_step();
        for (const ScheduledMove* move : matching) {
          const PebbleType pebble{senders[move->packet], t - 1};
          result.protocol.add(Op{OpKind::kSend, move->from, pebble, move->to});
          result.protocol.add(Op{OpKind::kReceive, move->to, pebble, move->from});
        }
      }
    }
    // Computation: one generate per hosted guest, round-robin across hosts.
    for (std::uint32_t round = 0; round < load; ++round) {
      result.protocol.begin_step();
      for (std::uint32_t q = 0; q < m; ++q) {
        if (round < guests_of[q].size()) {
          result.protocol.add(Op{OpKind::kGenerate, q, PebbleType{guests_of[q][round], t}, 0});
        }
      }
    }
  }
  return result;
}

}  // namespace upn
