// Universal simulation on butterfly hosts with OFF-LINE routing -- the exact
// construction of the Theorem 2.1 butterfly corollary.
//
// "Because the guest has constant degree, the ceil(n/m)-ceil(n/m) routing
// problem ... can be solved by routing O(n/m) permutations that depend on G
// only, and, therefore, are known in advance."  The per-step communication
// relation is fixed by (G, f), so its schedule (gather + pipelined Benes
// batches + scatter, offline_butterfly.hpp) is computed ONCE and replayed
// every guest step, moving real configuration payloads.  This is the
// ablation partner of the online UniversalSimulator: same embedding, same
// correctness check, different routing regime.
//
// The schedule is multiport (one packet per directed link per step); under
// the single-port pebble accounting every step costs at most 2 (a processor
// may send and receive in the same multiport step, never more), reported as
// host_steps_single_port.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

struct OfflineUniversalResult {
  std::uint32_t guest_steps = 0;
  std::uint32_t schedule_steps = 0;       ///< off-line routing steps per guest step
  std::uint32_t compute_steps = 0;        ///< load steps per guest step
  std::uint32_t host_steps = 0;           ///< multiport total T'
  std::uint32_t host_steps_single_port = 0;  ///< 2x routing + compute bound
  std::uint32_t num_batches = 0;          ///< Benes batches in the schedule
  double slowdown = 0.0;                  ///< multiport s
  double slowdown_single_port = 0.0;
  bool configs_match = false;             ///< vs the direct guest execution
};

/// Simulates `guest_steps` steps of `guest` on the dimension-d unwrapped
/// butterfly via the precomputed off-line schedule.  `embedding` maps guest
/// nodes to butterfly node ids.
[[nodiscard]] OfflineUniversalResult run_offline_universal(
    const Graph& guest, std::uint32_t butterfly_dimension,
    const std::vector<NodeId>& embedding, std::uint32_t guest_steps,
    std::uint64_t seed = 0x5eed);

}  // namespace upn
