// Textual (de)serialization of embeddings f: guest -> host.
//
// Format (line-oriented, whitespace-separated, mirroring pebble/io):
//   upn-embedding 1 <n> <m> <declared_load>
//   <host id of guest 0>
//   <host id of guest 1>
//   ...
// The header declares the load bound the producer claims (max guests per
// host).  tools/upn_lint statically re-derives the actual load and rejects
// files whose contents exceed their declaration, so a stored embedding can
// be trusted without re-running the embedder.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Hostile-input cap on n and m (same rationale as kMaxProtocolDimension).
inline constexpr std::uint32_t kMaxEmbeddingDimension = 1u << 26;

/// An embedding as stored on disk: the map plus its declared bounds.
struct StoredEmbedding {
  std::vector<NodeId> map;          ///< guest u -> host map[u]
  std::uint32_t num_hosts = 0;      ///< m
  std::uint32_t declared_load = 0;  ///< producer's claimed max_q |f^{-1}(q)|
};

/// Writes the embedding with its actual load as the declared bound.
void write_embedding(std::ostream& os, const std::vector<NodeId>& embedding,
                     std::uint32_t num_hosts);

/// Parses an embedding; throws std::runtime_error with a line number on
/// malformed input (bad header, non-numeric fields, host ids >= m, missing
/// or surplus rows).  Does NOT check the declared load -- that is the
/// linter's job, so a forged declaration is representable and detectable.
[[nodiscard]] StoredEmbedding read_embedding(std::istream& is);

}  // namespace upn
