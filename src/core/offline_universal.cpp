#include "src/core/offline_universal.hpp"

#include <stdexcept>
#include <unordered_map>

#include "src/compute/machine.hpp"
#include "src/core/embedding.hpp"
#include "src/routing/offline_butterfly.hpp"
#include "src/topology/butterfly.hpp"

namespace upn {

OfflineUniversalResult run_offline_universal(const Graph& guest,
                                             std::uint32_t butterfly_dimension,
                                             const std::vector<NodeId>& embedding,
                                             std::uint32_t guest_steps, std::uint64_t seed) {
  const ButterflyLayout layout{butterfly_dimension, /*wrapped=*/false};
  const std::uint32_t n = guest.num_nodes();
  const std::uint32_t m = layout.num_nodes();
  if (embedding.size() != n) {
    throw std::invalid_argument{"run_offline_universal: embedding size != guest size"};
  }

  // The communication relation is per-(G, f) fixed: demand d carries the
  // configuration of guest `senders[d]` to the host of `receivers[d]`.
  HhProblem relation{m};
  std::vector<NodeId> senders, receivers;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] == embedding[v]) continue;
      relation.add(embedding[u], embedding[v]);
      senders.push_back(u);
      receivers.push_back(v);
    }
  }
  // Schedule once, replay every step ("known in advance").
  const OfflineSchedule schedule = route_relation_offline(butterfly_dimension, relation);
  if (!validate_schedule(schedule, relation)) {
    throw std::logic_error{"run_offline_universal: schedule failed validation"};
  }
  const std::uint32_t load = embedding_load(embedding, m);

  OfflineUniversalResult result;
  result.guest_steps = guest_steps;
  result.schedule_steps = schedule.num_steps;
  result.num_batches = schedule.num_batches;

  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(seed, u);
  std::vector<std::unordered_map<NodeId, Config>> received(n);

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    // The schedule's packet index d is the d-th demand; its payload is the
    // current configuration of senders[d].  Delivery is by construction of
    // the validated schedule, so we can hand the payload over directly.
    for (auto& bucket : received) bucket.clear();
    for (std::size_t d = 0; d < senders.size(); ++d) {
      received[receivers[d]].emplace(senders[d], configs[senders[d]]);
    }
    std::vector<Config> neighbor_configs;
    neighbor_configs.reserve(guest.max_degree());
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (const NodeId w : guest.neighbors(v)) {
        if (embedding[w] == embedding[v]) {
          neighbor_configs.push_back(configs[w]);
        } else {
          neighbor_configs.push_back(received[v].at(w));
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
  }

  result.compute_steps = load;
  result.host_steps = guest_steps * (schedule.num_steps + load);
  result.host_steps_single_port = guest_steps * (2 * schedule.num_steps + load);
  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.slowdown_single_port =
      guest_steps == 0 ? 0.0
                       : static_cast<double>(result.host_steps_single_port) / guest_steps;
  result.configs_match = run_reference(guest, seed, guest_steps) == configs;
  return result;
}

}  // namespace upn
