#include "src/core/scheduled_universal.hpp"

#include <stdexcept>
#include <unordered_map>

#include "src/compute/machine.hpp"
#include "src/core/embedding.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/path_schedule.hpp"

namespace upn {

ScheduledUniversalResult run_scheduled_universal(const Graph& guest, const Graph& host,
                                                 const std::vector<NodeId>& embedding,
                                                 std::uint32_t guest_steps,
                                                 std::uint64_t seed) {
  const std::uint32_t n = guest.num_nodes();
  const std::uint32_t m = host.num_nodes();
  if (embedding.size() != n) {
    throw std::invalid_argument{"run_scheduled_universal: embedding size mismatch"};
  }

  UPN_OBS_SPAN("sim.scheduled.run");
  HhProblem relation{m};
  std::vector<NodeId> senders, receivers;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] == embedding[v]) continue;
      relation.add(embedding[u], embedding[v]);
      senders.push_back(u);
      receivers.push_back(v);
    }
  }
  const PathSchedule schedule = [&] {
    UPN_OBS_SPAN("sim.scheduled.schedule");
    return schedule_paths(host, relation);
  }();
  {
    UPN_OBS_SPAN("sim.scheduled.validate");
    if (!validate_path_schedule(host, relation, schedule)) {
      throw std::logic_error{"run_scheduled_universal: schedule failed validation" +
                             obs::context_suffix()};
    }
  }
  const std::uint32_t load = embedding_load(embedding, m);
  UPN_OBS_COUNT("sim.scheduled.demands", relation.size());
  UPN_OBS_GAUGE_MAX("sim.scheduled.congestion", schedule.congestion);
  UPN_OBS_GAUGE_MAX("sim.scheduled.dilation", schedule.dilation);
  UPN_OBS_GAUGE_MAX("sim.scheduled.makespan", schedule.makespan);

  ScheduledUniversalResult result;
  result.guest_steps = guest_steps;
  result.schedule_steps = schedule.makespan;
  result.congestion = schedule.congestion;
  result.dilation = schedule.dilation;
  result.compute_steps = load;

  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(seed, u);
  std::vector<std::unordered_map<NodeId, Config>> received(n);
  std::vector<Config> neighbor_configs;
  neighbor_configs.reserve(guest.max_degree());

  UPN_OBS_SPAN("sim.scheduled.compute");
  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    UPN_OBS_STEP(t);
    // Delivery is by the validated schedule: demand d carries senders[d]'s
    // configuration to receivers[d]'s host.
    for (auto& bucket : received) bucket.clear();
    for (std::size_t d = 0; d < senders.size(); ++d) {
      received[receivers[d]].emplace(senders[d], configs[senders[d]]);
    }
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (const NodeId w : guest.neighbors(v)) {
        if (embedding[w] == embedding[v]) {
          neighbor_configs.push_back(configs[w]);
        } else {
          neighbor_configs.push_back(received[v].at(w));
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
  }
  result.host_steps = guest_steps * (schedule.makespan + load);
  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.configs_match = run_reference(guest, seed, guest_steps) == configs;
  return result;
}

}  // namespace upn
