#include "src/core/fault_tolerant_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/compute/machine.hpp"
#include "src/core/embedding.hpp"
#include "src/obs/obs.hpp"

namespace upn {

namespace {

constexpr NodeId kNoSurvivorHost = 0xffffffffu;

/// Emits one protocol step per router step: every successful transfer is a
/// send plus the mirrored receive of the pebble (P_tag, pebble_time);
/// dropped transfers emit the send only -- the copy was lost in flight.
void emit_route_ops(Protocol& protocol, const RouteResult& routed, std::uint32_t pebble_time) {
  std::size_t cursor = 0;
  for (std::uint32_t step = 0; step < routed.steps; ++step) {
    protocol.begin_step();
    for (; cursor < routed.transfers.size() && routed.transfers[cursor].step == step;
         ++cursor) {
      const Transfer& tr = routed.transfers[cursor];
      const PebbleType pebble{routed.packets[tr.packet].tag, pebble_time};
      protocol.add(Op{OpKind::kSend, tr.from, pebble, tr.to});
      if (tr.dropped == 0) {
        protocol.add(Op{OpKind::kReceive, tr.to, pebble, tr.from});
      }
    }
  }
}

}  // namespace

FaultTolerantSimulator::FaultTolerantSimulator(const Graph& guest, const Graph& host,
                                               const FaultPlan& plan,
                                               std::vector<NodeId> embedding)
    : guest_(&guest), host_(&host), plan_(&plan), embedding_(std::move(embedding)) {
  if (embedding_.size() != guest.num_nodes()) {
    throw std::invalid_argument{"FaultTolerantSimulator: embedding size != guest size"};
  }
  for (const NodeId q : embedding_) {
    if (q >= host.num_nodes()) {
      throw std::invalid_argument{"FaultTolerantSimulator: embedding target out of range"};
    }
  }
}

FaultSimResult FaultTolerantSimulator::run(std::uint32_t guest_steps,
                                           const FaultSimOptions& options) {
  UPN_OBS_SPAN("sim.fault.run");
  const Graph& guest = *guest_;
  const Graph& host = *host_;
  const std::uint32_t n = guest.num_nodes();
  const std::uint32_t m = host.num_nodes();

  SyncRouter router{host, PortModel::kSinglePort};

  FaultSimResult result;
  result.guest_steps = guest_steps;
  if (options.emit_protocol) result.protocol.emplace(n, m, guest_steps);

  // Host step counter H: the fault plan is evaluated at H, every routing
  // phase is offset by H, and H is what slowdown is measured from.
  std::uint32_t H = 0;

  // The plan as revealed so far (permanent faults quantized to guest-step
  // boundaries; drop windows verbatim).  Rebuilt when new faults activate.
  FaultPlan revealed = plan_->revealed_at(0);
  std::vector<char> host_dead(m, 0);

  auto guests_of = invert_embedding(embedding_, m);
  auto update_load = [&]() {
    for (const auto& bucket : guests_of) {
      result.load = std::max(result.load, static_cast<std::uint32_t>(bucket.size()));
    }
  };
  update_load();

  FaultRouteOptions route_opts;
  route_opts.plan = &revealed;
  route_opts.max_retries = options.max_retries;
  route_opts.backoff_base = options.backoff_base;

  // Routes `packets` at the current host step, re-injecting lost packets a
  // bounded number of times.  Returns false when packets remain lost (the
  // surviving host cannot deliver them).  On success `deliver` has been
  // called once per packet.
  auto route_phase = [&](std::vector<Packet> packets, std::uint32_t pebble_time,
                         auto&& deliver) -> bool {
    UPN_OBS_SPAN("sim.fault.route");
    std::uint32_t attempts = 0;
    while (!packets.empty()) {
      result.packets_routed += packets.size();
      UPN_OBS_COUNT("sim.fault.packets_routed", packets.size());
      route_opts.step_offset = H;
      const bool log = options.emit_protocol;
      const RouteResult routed =
          router.route_with_faults(std::move(packets), route_opts, options.policy, log);
      H += routed.steps;
      result.comm_steps += routed.steps;
      result.retransmissions += routed.retransmissions;
      result.reroutes += routed.reroutes;
      if (options.emit_protocol) emit_route_ops(*result.protocol, routed, pebble_time);
      packets.clear();
      for (const Packet& p : routed.packets) {
        if (p.lost != 0) {
          Packet retry;
          retry.src = p.src;
          retry.dst = p.dst;
          retry.via = p.dst;
          retry.payload = p.payload;
          retry.tag = p.tag;
          retry.tag2 = p.tag2;
          packets.push_back(retry);
        } else {
          deliver(p);
        }
      }
      if (packets.empty()) return true;
      UPN_OBS_COUNT("sim.fault.reinjections", packets.size());
      if (++attempts > options.reinject_attempts) return false;
    }
    return true;
  };

  // Emits the computation phase of guest time `t` for the given per-host
  // guest lists; every host generates its pebbles sequentially.
  auto generate_rounds = [&](const std::vector<std::vector<NodeId>>& lists,
                             std::uint32_t t) -> std::uint32_t {
    std::uint32_t rounds = 0;
    for (const auto& bucket : lists) {
      rounds = std::max(rounds, static_cast<std::uint32_t>(bucket.size()));
    }
    if (options.emit_protocol) {
      for (std::uint32_t round = 0; round < rounds; ++round) {
        result.protocol->begin_step();
        for (std::uint32_t q = 0; q < m; ++q) {
          if (round < lists[q].size()) {
            result.protocol->add(Op{OpKind::kGenerate, q, PebbleType{lists[q][round], t}, 0});
          }
        }
      }
    }
    H += rounds;
    result.compute_steps += rounds;
    return rounds;
  };

  // Replays guest times 1..upto for the re-embedded guests in `lost`: their
  // new hosts receive the persisted predecessor pebbles from the current
  // holders and regenerate the lost history level by level.
  auto replay = [&](const std::vector<NodeId>& lost, std::uint32_t upto) -> bool {
    UPN_OBS_SPAN("sim.fault.replay");
    UPN_OBS_COUNT("sim.fault.replays", 1);
    UPN_OBS_HIST("sim.fault.replay_depth", upto);
    std::vector<std::vector<NodeId>> lists(m);
    for (const NodeId u : lost) lists[embedding_[u]].push_back(u);
    for (std::uint32_t tau = 1; tau <= upto; ++tau) {
      if (tau >= 2) {  // tau == 1 needs only initial pebbles, held by all
        std::vector<Packet> packets;
        std::unordered_set<std::uint64_t> seen;  // (guest j) -> (dest host)
        for (const NodeId u : lost) {
          for (const NodeId j : guest.neighbors(u)) {
            const NodeId holder = embedding_[j];
            const NodeId dest = embedding_[u];
            if (holder == dest) continue;
            const std::uint64_t key = (static_cast<std::uint64_t>(j) << 32) | dest;
            if (!seen.insert(key).second) continue;
            Packet p;
            p.src = holder;
            p.dst = dest;
            p.via = dest;
            p.tag = j;
            p.tag2 = u;
            packets.push_back(p);
          }
        }
        const std::uint32_t before = result.comm_steps;
        if (!route_phase(std::move(packets), tau - 1, [](const Packet&) {})) return false;
        result.replay_steps += result.comm_steps - before;
      }
      result.replay_steps += generate_rounds(lists, tau);
    }
    return true;
  };

  // Current guest configurations (time t-1 while simulating step t).
  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(options.seed, u);

  // received[v] -> (neighbor u -> u's configuration) for the current step.
  std::vector<std::unordered_map<NodeId, Config>> received(n);

  auto finish = [&](bool completed) -> FaultSimResult {
    UPN_OBS_SPAN("sim.fault.validate");
    UPN_OBS_COUNT("sim.fault.replay_steps", result.replay_steps);
    UPN_OBS_COUNT("sim.fault.fault_epochs", result.fault_epochs);
    UPN_OBS_COUNT("sim.fault.reembedded_guests", result.reembedded_guests);
    result.host_steps = result.comm_steps + result.compute_steps;
    result.slowdown =
        guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
    result.inefficiency = n == 0 ? 0.0 : result.slowdown * m / n;
    result.completed = completed;
    if (completed) {
      const std::vector<Config> reference = run_reference(guest, options.seed, guest_steps);
      result.configs_match = reference == configs;
    }
    return result;
  };

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    UPN_OBS_STEP(t);
    // ---- Fault detection at the guest-step boundary. ----
    bool new_faults = false;
    for (NodeId q = 0; q < m; ++q) {
      if (host_dead[q] == 0 && !plan_->node_alive(q, H)) {
        host_dead[q] = 1;
        new_faults = true;
      }
    }
    for (const LinkFault& f : plan_->link_faults()) {
      if (f.step <= H && revealed.link_alive(f.u, f.v, 0)) new_faults = true;
    }
    if (new_faults) {
      ++result.fault_epochs;
      revealed = plan_->revealed_at(H);
      // Re-embed guests whose host died onto the least-loaded survivors.
      std::vector<NodeId> lost;
      for (NodeId u = 0; u < n; ++u) {
        if (host_dead[embedding_[u]] != 0) lost.push_back(u);
      }
      if (!lost.empty()) {
        std::vector<std::uint32_t> load(m, 0);
        for (NodeId u = 0; u < n; ++u) {
          if (host_dead[embedding_[u]] == 0) ++load[embedding_[u]];
        }
        bool any_survivor = false;
        for (NodeId q = 0; q < m; ++q) any_survivor |= host_dead[q] == 0;
        if (!any_survivor) return finish(false);
        for (const NodeId u : lost) {
          NodeId best = kNoSurvivorHost;
          for (NodeId q = 0; q < m; ++q) {
            if (host_dead[q] != 0) continue;
            if (best == kNoSurvivorHost || load[q] < load[best]) best = q;
          }
          embedding_[u] = best;
          ++load[best];
        }
        guests_of = invert_embedding(embedding_, m);
        update_load();
        result.reembedded_guests += static_cast<std::uint32_t>(lost.size());
        if (!replay(lost, t - 1)) return finish(false);
      }
    }

    // ---- Phase 1: communication (the h-h routing of Theorem 2.1). ----
    std::vector<Packet> packets;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : guest.neighbors(u)) {
        if (embedding_[u] == embedding_[v]) continue;
        Packet p;
        p.src = embedding_[u];
        p.dst = embedding_[v];
        p.via = p.dst;
        p.payload = configs[u];
        p.tag = u;
        p.tag2 = v;
        packets.push_back(p);
      }
    }
    for (auto& bucket : received) bucket.clear();
    if (!route_phase(std::move(packets), t - 1,
                     [&](const Packet& p) { received[p.tag2].emplace(p.tag, p.payload); })) {
      return finish(false);
    }

    // ---- Phase 2: computation (sequential per host, parallel across). ----
    std::vector<Config> neighbor_configs;
    neighbor_configs.reserve(guest.max_degree());
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (const NodeId w : guest.neighbors(v)) {
        if (embedding_[w] == embedding_[v]) {
          neighbor_configs.push_back(configs[w]);  // local guest, no packet
        } else {
          const auto it = received[v].find(w);
          if (it == received[v].end()) {
            throw std::logic_error{"FaultTolerantSimulator: missing routed configuration" +
                                   obs::context_suffix()};
          }
          neighbor_configs.push_back(it->second);
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
    generate_rounds(guests_of, t);
  }

  return finish(true);
}

}  // namespace upn
