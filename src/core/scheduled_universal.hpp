// Off-line universal simulation on ARBITRARY hosts.
//
// Theorem 2.1's off-line route only needs the communication relation to be
// known in advance -- nothing butterfly-specific.  Here the per-step
// relation of (guest, embedding) is path-scheduled once on any host
// (routing/path_schedule.hpp: fixed shortest paths, farthest-first link
// scheduling, makespan near congestion + dilation) and replayed every guest
// step.  Together with offline_universal.hpp (the Benes specialization)
// this completes the ablation: online greedy vs off-line generic vs
// off-line butterfly-structured.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

struct ScheduledUniversalResult {
  std::uint32_t guest_steps = 0;
  std::uint32_t schedule_steps = 0;  ///< makespan of the per-step schedule
  std::uint32_t congestion = 0;      ///< C of the fixed path system
  std::uint32_t dilation = 0;        ///< D of the fixed path system
  std::uint32_t compute_steps = 0;   ///< load per guest step
  std::uint32_t host_steps = 0;
  double slowdown = 0.0;
  bool configs_match = false;
};

/// Simulates T guest steps of `guest` on `host` with the precomputed path
/// schedule; verified against the direct execution.
[[nodiscard]] ScheduledUniversalResult run_scheduled_universal(
    const Graph& guest, const Graph& host, const std::vector<NodeId>& embedding,
    std::uint32_t guest_steps, std::uint64_t seed = 0x5eed);

}  // namespace upn
