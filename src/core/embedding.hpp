// Static embeddings f: guest processors -> host processors.
//
// Theorem 2.1's proof starts from "a mapping f of the nodes of G to the
// nodes of M such that each node Q of M gets at most ceil(n/m) of the nodes
// of G".  Any balanced f works for the theorem; we provide a deterministic
// block embedding, a random balanced embedding, and bookkeeping helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// Deterministic block embedding: guest u -> host u % m (load <= ceil(n/m),
/// spread as evenly as possible).
[[nodiscard]] std::vector<NodeId> make_block_embedding(std::uint32_t n, std::uint32_t m);

/// Random balanced embedding: a random permutation of the block embedding's
/// slot multiset, so load stays <= ceil(n/m) but placement is uniform.
[[nodiscard]] std::vector<NodeId> make_random_embedding(std::uint32_t n, std::uint32_t m,
                                                        Rng& rng);

/// guests_of[q] = guest nodes mapped to host q, ascending.
[[nodiscard]] std::vector<std::vector<NodeId>> invert_embedding(
    const std::vector<NodeId>& embedding, std::uint32_t m);

/// max_q |f^{-1}(q)|: the load of the embedding.
[[nodiscard]] std::uint32_t embedding_load(const std::vector<NodeId>& embedding,
                                           std::uint32_t m);

}  // namespace upn
