#include "src/core/online_adaptive_sim.hpp"

#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/compute/machine.hpp"
#include "src/core/embedding.hpp"
#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"

namespace upn {

OnlineAdaptiveSimulator::OnlineAdaptiveSimulator(const Graph& guest, const Graph& host,
                                                 std::vector<NodeId> embedding,
                                                 const FaultPlan& plan)
    : guest_(&guest), host_(&host), plan_(&plan), embedding_(std::move(embedding)) {
  UPN_OBS_SPAN("sim.online.embed");
  if (embedding_.size() != guest.num_nodes()) {
    throw std::invalid_argument{"OnlineAdaptiveSimulator: embedding size != guest size"};
  }
  load_ = embedding_load(embedding_, host.num_nodes());
  UPN_ENSURE(static_cast<std::uint64_t>(load_) * host.num_nodes() >= guest.num_nodes(),
             "embedding load must cover all guests");
}

OnlineAdaptiveSimResult OnlineAdaptiveSimulator::run(std::uint32_t guest_steps,
                                                     const OnlineAdaptiveSimOptions& options) {
  UPN_OBS_SPAN("sim.online.run");
  const Graph& guest = *guest_;
  const std::uint32_t n = guest.num_nodes();

  // One PERSISTENT router for the whole run: tables learned during guest
  // step t keep serving step t+1, and the fault clock advances continuously
  // across phases -- this is what makes the regime online rather than a
  // per-step rebuild.
  OnlineRouter router{*host_, *plan_, options.router};

  OnlineAdaptiveSimResult result;
  result.guest_steps = guest_steps;
  result.load = load_;

  {
    UPN_OBS_SPAN("sim.online.warmup");
    const ConvergenceReport warmup = router.run_until_stable(options.warmup_rounds);
    result.warmup_rounds = warmup.rounds;
    result.warmup_stable = warmup.stable;
    UPN_OBS_COUNT("sim.online.warmup_rounds", warmup.rounds);
  }

  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(options.seed, u);

  // last_known[v] -> (neighbor u -> the latest configuration of u that v's
  // host received).  Seeded with the initial configurations -- guests boot
  // knowing their neighbors' start state -- so a stale read always has
  // SOMETHING to fall back on and degradation is gradual, not a crash.
  std::vector<std::unordered_map<NodeId, Config>> last_known(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : guest.neighbors(v)) {
      if (embedding_[v] != embedding_[w]) {
        last_known[v].emplace(w, initial_config(options.seed, w));
      }
    }
  }

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    UPN_OBS_STEP(t);
    // ---- Phase 1: communication over the adapting tables. ----
    {
      UPN_OBS_SPAN("sim.online.route");
      std::vector<Packet> packets;
      for (NodeId u = 0; u < n; ++u) {
        for (const NodeId v : guest.neighbors(u)) {
          if (embedding_[u] == embedding_[v]) continue;
          Packet p;
          p.src = embedding_[u];
          p.dst = embedding_[v];
          p.via = p.dst;
          p.payload = configs[u];
          p.tag = u;
          p.tag2 = v;
          packets.push_back(p);
        }
      }
      result.packets_routed += packets.size();
      UPN_OBS_COUNT("sim.online.packets_routed", packets.size());
      if (!packets.empty()) {
        const OnlineRouteResult routed =
            router.route(std::move(packets), options.max_comm_steps);
        result.comm_steps += routed.steps;
        result.packets_lost += routed.lost;
        UPN_OBS_COUNT("sim.online.comm_steps", routed.steps);
        for (const Packet& p : routed.packets) {
          if (p.lost == 0) last_known[p.tag2][p.tag] = p.payload;
        }
      }
    }

    // ---- Phase 2: computation; missing payloads become stale reads. ----
    UPN_OBS_SPAN("sim.online.compute");
    std::vector<Config> neighbor_configs;
    neighbor_configs.reserve(guest.max_degree());
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (const NodeId w : guest.neighbors(v)) {
        if (embedding_[w] == embedding_[v]) {
          neighbor_configs.push_back(configs[w]);  // local guest, no packet
        } else {
          // last_known was refreshed above iff w's packet survived churn;
          // otherwise this read is stale by construction.  A delivered
          // packet carries configs[w] from this step, so counting "not
          // refreshed this step" is exact, and lost-packet accounting
          // already told us how many refreshes were missing.
          neighbor_configs.push_back(last_known[v].at(w));
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
    result.compute_steps += load_;
    UPN_OBS_COUNT("sim.online.compute_steps", load_);
  }

  // Every lost packet denied exactly one (receiver, step) refresh, so the
  // loss count IS the stale-read count.
  result.stale_reads = result.packets_lost;
  UPN_OBS_COUNT("sim.online.stale_reads", result.stale_reads);
  UPN_OBS_COUNT("sim.online.packets_lost", result.packets_lost);

  result.host_steps = result.comm_steps + result.compute_steps;
  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.inefficiency = n == 0 ? 0.0 : result.slowdown * host_->num_nodes() / n;

  // ---- End-to-end verification against the direct execution. ----
  UPN_OBS_SPAN("sim.online.validate");
  const std::vector<Config> reference = run_reference(guest, options.seed, guest_steps);
  result.configs_match = reference == configs;
  UPN_ENSURE(result.stale_reads > 0 || guest_steps == 0 || result.configs_match,
             "with every packet delivered the online regime must be exact");
  UPN_OBS_COUNT("sim.online.runs", 1);
  return result;
}

}  // namespace upn
