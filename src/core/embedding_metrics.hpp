// Quality metrics of static embeddings: load, dilation, congestion.
//
// The embedding concept (Section 1, [16]): guest nodes are statically mapped
// to host nodes, guest edges to host paths.  The classic performance bound
// is slowdown = Omega(max(load, dilation, congestion)) and O(load +
// dilation + congestion) with proper scheduling.  [13]'s result that
// constant-slowdown universal networks are exponentially large *if only
// embeddings are allowed* is about these quantities; we measure them for
// concrete (guest, host, f) triples as the EMB ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

struct EmbeddingMetrics {
  std::uint32_t load = 0;           ///< max guests per host
  std::uint32_t dilation = 0;       ///< max host distance of a guest edge
  double avg_dilation = 0.0;
  std::uint32_t congestion = 0;     ///< max guest paths over one host edge
  double avg_congestion = 0.0;      ///< mean over used host edges
  std::uint64_t total_path_length = 0;

  /// The classic lower bound on any step-by-step simulation based on f.
  [[nodiscard]] std::uint32_t slowdown_lower_bound() const noexcept {
    std::uint32_t bound = load;
    if (dilation > bound) bound = dilation;
    if (congestion > bound) bound = congestion;
    return bound;
  }
};

/// Routes every guest edge along a deterministic shortest host path (BFS
/// per destination, hash tie-breaking) and accumulates the metrics.
[[nodiscard]] EmbeddingMetrics analyze_embedding(const Graph& guest, const Graph& host,
                                                 const std::vector<NodeId>& embedding);

}  // namespace upn
