// The universal simulator: Theorem 2.1 made executable.
//
// "Let f map the nodes of G to the nodes of M such that each node of M gets
// at most ceil(n/m) nodes of G.  The simulation is step by step.  Q simulates
// the internal computations of its guests sequentially.  If a processor P of
// G wants to communicate with its neighbor P', the processor Q = f(P)
// generates a packet with destination f(P').  The desired communication
// forms a ceil(n/m)-ceil(n/m) routing problem."
//
// Each guest step is simulated in two phases:
//   1. COMMUNICATION: one packet per directed guest edge crossing hosts,
//      carrying the sender's configuration, routed by the synchronous
//      router (single-port by default, so the emitted protocol obeys the
//      pebble game's one-operation-per-step rule);
//   2. COMPUTATION: every host applies the guest transition to each of its
//      guests sequentially (max load steps, in parallel across hosts).
//
// The simulator optionally emits the full Section 3.1 pebble protocol
// (validated by pebble/validator.hpp) and always checks the resulting
// configurations against the direct SyncMachine execution, so correctness
// is observed, not assumed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/compute/machine.hpp"
#include "src/pebble/protocol.hpp"
#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct UniversalSimOptions {
  /// Routing policy; nullptr = the simulator's internal GreedyPolicy (built
  /// lazily on first use and reused across runs, so its BFS tables amortize).
  RoutingPolicy* policy = nullptr;
  PortModel port_model = PortModel::kSinglePort;
  bool emit_protocol = false;
  std::uint64_t seed = 0x5eed;  ///< initial guest configurations
};

struct UniversalSimResult {
  std::uint32_t guest_steps = 0;   ///< T
  std::uint32_t host_steps = 0;    ///< T'
  std::uint32_t comm_steps = 0;    ///< host steps spent routing
  std::uint32_t compute_steps = 0; ///< host steps spent generating
  std::uint32_t load = 0;          ///< max guests per host
  std::uint64_t packets_routed = 0;
  double slowdown = 0.0;           ///< s = T'/T
  double inefficiency = 0.0;       ///< k = s m / n
  bool configs_match = false;      ///< vs the direct guest execution
  std::optional<Protocol> protocol;
};

class GreedyPolicy;

class UniversalSimulator {
 public:
  /// `embedding[u]` = host processor simulating guest u.  Graphs must
  /// outlive the simulator.
  UniversalSimulator(const Graph& guest, const Graph& host, std::vector<NodeId> embedding);
  ~UniversalSimulator();

  /// Simulates T guest steps.
  [[nodiscard]] UniversalSimResult run(std::uint32_t guest_steps,
                                       const UniversalSimOptions& options = {});

  [[nodiscard]] const std::vector<NodeId>& embedding() const noexcept { return embedding_; }

 private:
  const Graph* guest_;
  const Graph* host_;
  std::vector<NodeId> embedding_;
  std::vector<std::vector<NodeId>> guests_of_;
  std::uint32_t load_;
  std::unique_ptr<GreedyPolicy> default_policy_;  ///< lazy, shared across runs
};

}  // namespace upn
