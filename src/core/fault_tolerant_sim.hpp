// Self-healing universal simulation: Theorem 2.1 on degrading hardware.
//
// Wraps the step-by-step simulation of core/universal_sim.hpp with a
// FaultPlan (fault/fault_plan.hpp).  Permanent faults are revealed at
// guest-step boundaries; when a host processor is discovered dead, the
// guests it simulated are re-embedded onto surviving processors (least
// loaded first, reusing core/embedding bookkeeping) and their lost pebble
// history is REPLAYED: the new host regenerates (P_u, 1), ..., (P_u, t-1)
// from the initial pebbles and its neighbors' persisted pebbles.  Replay is
// legal in the unmodified Section 3.1 game -- pebbles are never lost at
// surviving processors, so every predecessor a regeneration needs can be
// re-sent by its original generator.  Transient packet drops surface as
// SEND operations whose mirrored RECEIVE never happened (the pebble copy
// was lost in flight), followed by a backoff retransmission; both are legal
// protocol behaviors.
//
// Degradation is therefore visible ONLY as extra slowdown: the emitted
// protocol always validates against the original host graph, and -- when
// every permanent fault activates before its hardware is first used (e.g.
// faults at host step 0, the standard degradation-curve scenario) --
// against the surviving host as well (surviving_edges_graph), because all
// traffic is routed on live links from the start.  See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/pebble/protocol.hpp"
#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct FaultSimOptions {
  /// External policy consulted first on live links; nullptr = the router's
  /// internal greedy policy on the surviving subgraph.
  RoutingPolicy* policy = nullptr;
  std::uint64_t seed = 0x5eed;     ///< initial guest configurations
  bool emit_protocol = false;      ///< single-port protocol, Section 3.1 rules
  std::uint32_t max_retries = 16;  ///< per packet, per routing phase
  std::uint32_t backoff_base = 1;  ///< retransmission backoff (doubles per retry)
  std::uint32_t reinject_attempts = 3;  ///< extra routing rounds for lost packets
};

struct FaultSimResult {
  std::uint32_t guest_steps = 0;   ///< T
  std::uint32_t host_steps = 0;    ///< T' (includes healing)
  std::uint32_t comm_steps = 0;    ///< host steps spent routing
  std::uint32_t compute_steps = 0; ///< host steps spent generating
  std::uint32_t replay_steps = 0;  ///< subset of host_steps spent healing
  std::uint32_t fault_epochs = 0;  ///< boundaries at which new faults appeared
  std::uint32_t reembedded_guests = 0;
  std::uint32_t load = 0;          ///< max guests per live host observed
  std::uint64_t packets_routed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t reroutes = 0;
  double slowdown = 0.0;           ///< s = T'/T
  double inefficiency = 0.0;       ///< k = s m / n
  bool completed = false;          ///< false: survivors could not carry the guest
  bool configs_match = false;      ///< vs the direct guest execution
  std::optional<Protocol> protocol;
};

class FaultTolerantSimulator {
 public:
  /// `embedding[u]` = host processor initially simulating guest u (may
  /// include processors the plan later kills -- healing handles it).
  /// Graphs and plan must outlive the simulator.
  FaultTolerantSimulator(const Graph& guest, const Graph& host, const FaultPlan& plan,
                         std::vector<NodeId> embedding);

  /// Simulates T guest steps under the fault plan.  Returns (rather than
  /// throws) with completed == false when the surviving host can no longer
  /// carry the guest (e.g. the survivors are disconnected).
  [[nodiscard]] FaultSimResult run(std::uint32_t guest_steps,
                                   const FaultSimOptions& options = {});

  [[nodiscard]] const std::vector<NodeId>& embedding() const noexcept { return embedding_; }

 private:
  const Graph* guest_;
  const Graph* host_;
  const FaultPlan* plan_;
  std::vector<NodeId> embedding_;
};

}  // namespace upn
