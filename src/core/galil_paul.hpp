// The Galil-Paul sorting-based universality baseline.
//
// Galil & Paul [6] (Section 1): a size-m network that sorts in sort(n, m)
// steps is n-universal with slowdown O(sort(n, m)).  With a bitonic sorter
// this costs O(log^2 m) per permutation round versus the paper's
// O(log m) off-line routing -- the gap that motivates Theorem 2.1's direct
// construction.  This module prices one guest step of a simulation under
// sorting-based routing so benches can compare the two upper-bound routes.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

struct GalilPaulCost {
  std::uint32_t rounds = 0;             ///< permutation rounds per guest step
  std::uint32_t sorter_depth = 0;       ///< comparator depth per round
  std::uint64_t steps_per_guest_step = 0;  ///< rounds * depth + load
  double slowdown = 0.0;                ///< steps per guest step
  bool delivered = false;               ///< the sort really routed everything
};

/// Prices (and functionally executes, on the array model) one guest step of
/// the Galil-Paul simulation of `guest` on a sorting host of `m` processors
/// (m rounded up internally to a power of two for the bitonic sorter).
[[nodiscard]] GalilPaulCost galil_paul_step_cost(const Graph& guest, std::uint32_t m);

/// The full Galil-Paul simulation: T guest steps where every configuration
/// travels through sorting-based routing (payload-carrying comparator
/// exchanges), verified against the direct guest execution.
struct GalilPaulSimResult {
  std::uint32_t guest_steps = 0;
  std::uint64_t host_steps = 0;   ///< comparator layers + sequential computes
  double slowdown = 0.0;
  bool configs_match = false;
};
[[nodiscard]] GalilPaulSimResult run_galil_paul(const Graph& guest, std::uint32_t m,
                                                std::uint32_t guest_steps,
                                                std::uint64_t seed = 0x5eed);

}  // namespace upn
