// The whole paper in one call.
//
// run_paper_pipeline() wires every subsystem together the way the paper's
// argument does: build G_0, plant it in a random 16-regular guest, simulate
// the guest on a butterfly host (Theorem 2.1), validate the emitted pebble
// protocol against the Section 3.1 rules, measure the slowdown against the
// upper- and lower-bound shapes, run the Lemma 3.12 averaging and the
// Prop 3.17 expansion analysis on the protocol, and extract a fragment with
// its Lemma 3.3 multiplicity bound.  The consolidated report is what a
// downstream user wants from this library in one object, and what the
// full_pipeline example prints.
#pragma once

#include <cstdint>
#include <string>

#include "src/lowerbound/expansion.hpp"
#include "src/lowerbound/lemma_verify.hpp"
#include "src/lowerbound/tradeoff.hpp"

namespace upn {

struct PipelineConfig {
  std::uint32_t guest_size_hint = 64;    ///< rounded to G_0's constraints
  std::uint32_t butterfly_dimension = 2; ///< host = butterfly(d)
  std::uint32_t guest_steps = 16;
  std::uint64_t seed = 0x5eed;
};

struct PipelineReport {
  // Construction.
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  std::uint32_t a = 0;
  double expander_beta = 0;
  // Simulation (Theorem 2.1).
  double slowdown = 0;
  double inefficiency = 0;
  double load_bound = 0;
  double paper_shape = 0;       ///< (n/m) log2 m
  bool configs_verified = false;
  // Protocol (Section 3.1).
  bool protocol_valid = false;
  std::string protocol_error;   ///< empty when valid
  std::uint64_t protocol_ops = 0;
  // Lower-bound machinery.
  bool lemma312_holds = false;
  std::uint32_t z_size = 0;
  bool expansion_caps_hold = false;
  double fragment_log2_multiplicity = 0;
  std::uint64_t fragment_sum_b = 0;
  // Theorem 3.1 verdict on the measured data point.
  bool ruled_out_by_counting = false;  ///< must be false for a real simulation

  /// True iff every check above came out as the paper demands.
  [[nodiscard]] bool all_checks_pass() const noexcept {
    return configs_verified && protocol_valid && lemma312_holds && expansion_caps_hold &&
           !ruled_out_by_counting;
  }
};

[[nodiscard]] PipelineReport run_paper_pipeline(const PipelineConfig& config = {});

}  // namespace upn
