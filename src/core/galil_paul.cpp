#include "src/core/galil_paul.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "src/compute/machine.hpp"
#include "src/core/embedding.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/sorting/bitonic.hpp"
#include "src/sorting/sort_route.hpp"
#include "src/util/math.hpp"

namespace upn {

GalilPaulCost galil_paul_step_cost(const Graph& guest, std::uint32_t m) {
  if (m == 0) throw std::invalid_argument{"galil_paul_step_cost: m must be positive"};
  const auto sorter_size = static_cast<std::uint32_t>(next_power_of_two(m));
  const ComparatorNetwork sorter = make_bitonic_sorter(std::max(2u, sorter_size));

  const std::vector<NodeId> embedding = make_block_embedding(guest.num_nodes(), m);
  const HhProblem step_relation = guest_step_relation(guest, embedding, m);
  HhProblem relation{sorter.wires()};
  for (const Demand& d : step_relation.demands()) {
    relation.add(d.src, d.dst);
  }
  const SortRouteStats stats = route_relation_by_sorting(relation, sorter);

  GalilPaulCost cost;
  cost.rounds = stats.rounds;
  cost.sorter_depth = sorter.depth();
  cost.steps_per_guest_step =
      stats.comparator_steps + embedding_load(embedding, m);
  cost.slowdown = static_cast<double>(cost.steps_per_guest_step);
  cost.delivered = stats.delivered;
  return cost;
}

GalilPaulSimResult run_galil_paul(const Graph& guest, std::uint32_t m,
                                  std::uint32_t guest_steps, std::uint64_t seed) {
  if (m == 0) throw std::invalid_argument{"run_galil_paul: m must be positive"};
  const std::uint32_t n = guest.num_nodes();
  const auto wires = std::max(2u, static_cast<std::uint32_t>(next_power_of_two(m)));
  const ComparatorNetwork sorter = make_bitonic_sorter(wires);
  const std::vector<NodeId> embedding = make_block_embedding(n, m);
  const std::uint32_t load = embedding_load(embedding, m);

  // The per-step relation and the sender/receiver of each demand are fixed.
  HhProblem relation{wires};
  std::vector<NodeId> senders, receivers;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] == embedding[v]) continue;
      relation.add(embedding[u], embedding[v]);
      senders.push_back(u);
      receivers.push_back(v);
    }
  }

  GalilPaulSimResult result;
  result.guest_steps = guest_steps;
  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(seed, u);
  std::vector<std::unordered_map<NodeId, Config>> received(n);

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    // Payload d encodes (sending guest, its configuration) -- the sort
    // network physically moves these records to the destination host.
    std::vector<std::uint64_t> payloads(senders.size());
    for (std::size_t d = 0; d < senders.size(); ++d) payloads[d] = senders[d];
    const SortRouteDelivery delivery =
        deliver_relation_by_sorting(relation, payloads, sorter);
    if (!delivery.stats.delivered) {
      throw std::logic_error{"run_galil_paul: sort routing failed to deliver"};
    }
    result.host_steps += delivery.stats.comparator_steps + load;

    // Cross-check the physical delivery: the multiset of sender ids that
    // the sorting network dropped at each host must equal the demand
    // list's.  Only then is the configs hand-off below justified.
    {
      std::vector<std::vector<std::uint64_t>> expected(wires);
      for (std::size_t d = 0; d < senders.size(); ++d) {
        expected[embedding[receivers[d]]].push_back(senders[d]);
      }
      for (std::uint32_t host_node = 0; host_node < wires; ++host_node) {
        auto got = delivery.delivered[host_node];
        auto want = expected[host_node];
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        if (got != want) {
          throw std::logic_error{"run_galil_paul: sort routing delivered wrong records"};
        }
      }
    }
    for (auto& bucket : received) bucket.clear();
    for (std::size_t d = 0; d < senders.size(); ++d) {
      received[receivers[d]].emplace(senders[d], configs[senders[d]]);
    }
    std::vector<Config> neighbor_configs;
    neighbor_configs.reserve(guest.max_degree());
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (const NodeId w : guest.neighbors(v)) {
        if (embedding[w] == embedding[v]) {
          neighbor_configs.push_back(configs[w]);
        } else {
          neighbor_configs.push_back(received[v].at(w));
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
  }
  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.configs_match = run_reference(guest, seed, guest_steps) == configs;
  return result;
}

}  // namespace upn
