#include "src/core/embedding.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/contracts.hpp"

namespace upn {

std::vector<NodeId> make_block_embedding(std::uint32_t n, std::uint32_t m) {
  if (m == 0) throw std::invalid_argument{"make_block_embedding: m must be positive"};
  std::vector<NodeId> embedding(n);
  for (std::uint32_t u = 0; u < n; ++u) embedding[u] = u % m;
  UPN_ENSURE(n == 0 || embedding_load(embedding, m) <= (n + m - 1) / m,
             "block embedding must be balanced (load <= ceil(n/m))");
  return embedding;
}

std::vector<NodeId> make_random_embedding(std::uint32_t n, std::uint32_t m, Rng& rng) {
  std::vector<NodeId> embedding = make_block_embedding(n, m);
  rng.shuffle(embedding);
  UPN_ENSURE(n == 0 || embedding_load(embedding, m) <= (n + m - 1) / m,
             "shuffling must preserve the balanced load bound");
  return embedding;
}

std::vector<std::vector<NodeId>> invert_embedding(const std::vector<NodeId>& embedding,
                                                  std::uint32_t m) {
  std::vector<std::vector<NodeId>> guests_of(m);
  for (std::uint32_t u = 0; u < embedding.size(); ++u) {
    if (embedding[u] >= m) throw std::out_of_range{"invert_embedding: host id out of range"};
    guests_of[embedding[u]].push_back(u);
  }
  std::size_t total = 0;
  for (const auto& bucket : guests_of) total += bucket.size();
  UPN_ENSURE(total == embedding.size(), "inversion must partition the guest set");
  return guests_of;
}

std::uint32_t embedding_load(const std::vector<NodeId>& embedding, std::uint32_t m) {
  UPN_REQUIRE(m > 0 || embedding.empty(), "embedding_load: m == 0 only for empty embeddings");
  std::vector<std::uint32_t> load(m, 0);
  std::uint32_t worst = 0;
  for (const NodeId q : embedding) {
    if (q >= m) throw std::out_of_range{"embedding_load: host id out of range"};
    worst = std::max(worst, ++load[q]);
  }
  return worst;
}

}  // namespace upn
