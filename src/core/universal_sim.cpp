#include "src/core/universal_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/embedding.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/policies.hpp"
#include "src/util/contracts.hpp"

namespace upn {

UniversalSimulator::UniversalSimulator(const Graph& guest, const Graph& host,
                                       std::vector<NodeId> embedding)
    : guest_(&guest), host_(&host), embedding_(std::move(embedding)) {
  UPN_OBS_SPAN("sim.universal.embed");
  if (embedding_.size() != guest.num_nodes()) {
    throw std::invalid_argument{"UniversalSimulator: embedding size != guest size"};
  }
  guests_of_ = invert_embedding(embedding_, host.num_nodes());
  load_ = embedding_load(embedding_, host.num_nodes());
  // Theorem 2.1's starting point: every host gets at most ceil(n/m) guests,
  // so load * m must cover the guest set.
  UPN_ENSURE(static_cast<std::uint64_t>(load_) * host.num_nodes() >= guest.num_nodes(),
             "embedding load must cover all guests");
  UPN_OBS_GAUGE_MAX("sim.universal.embedding_load", load_);
}

UniversalSimulator::~UniversalSimulator() = default;

UniversalSimResult UniversalSimulator::run(std::uint32_t guest_steps,
                                           const UniversalSimOptions& options) {
  UPN_OBS_SPAN("sim.universal.run");
  const Graph& guest = *guest_;
  const Graph& host = *host_;
  const std::uint32_t n = guest.num_nodes();

  RoutingPolicy* policy = options.policy;
  if (policy == nullptr) {
    // Lazily built once per simulator, not per run: the greedy policy's BFS
    // distance tables depend only on the host graph, so repeated runs reuse
    // them instead of re-deriving every destination's distances.
    if (default_policy_ == nullptr) default_policy_ = std::make_unique<GreedyPolicy>(host);
    policy = default_policy_.get();
  }
  SyncRouter router{host, options.port_model};

  UniversalSimResult result;
  result.guest_steps = guest_steps;
  result.load = load_;
  if (options.emit_protocol) {
    if (options.port_model != PortModel::kSinglePort) {
      // Multiport transfers are not matchings, so they cannot be expressed
      // as one-operation-per-processor pebble steps.
      throw std::invalid_argument{
          "UniversalSimulator: protocol emission requires the single-port model"};
    }
    result.protocol.emplace(n, host.num_nodes(), guest_steps);
  }

  // Current guest configurations (time t-1 while simulating step t).
  std::vector<Config> configs(n), next(n);
  for (NodeId u = 0; u < n; ++u) configs[u] = initial_config(options.seed, u);

  // Routed configurations for the current step, flat on the guest's CSR
  // directed-edge slots: slot s in guest_off[v]..guest_off[v+1] holds the
  // configuration sent to v by its neighbor guest_adj[s].
  const std::uint32_t* guest_off = guest.offsets().data();
  const NodeId* guest_adj = guest.adjacency().data();
  std::vector<Config> received(guest.adjacency().size());
  std::vector<char> received_ok(guest.adjacency().size(), 0);
  // Directed guest edge (v <- u) to v's CSR slot for u.
  auto slot_in = [&](NodeId v, NodeId u) -> std::uint32_t {
    const NodeId* first = guest_adj + guest_off[v];
    const NodeId* last = guest_adj + guest_off[v + 1];
    return guest_off[v] + static_cast<std::uint32_t>(std::lower_bound(first, last, u) - first);
  };

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    UPN_OBS_STEP(t);
    // ---- Phase 1: communication (the h-h routing of Theorem 2.1). ----
    std::uint32_t comm_steps_t = 0;
    {
    UPN_OBS_SPAN("sim.universal.route");
    std::vector<Packet> packets;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : guest.neighbors(u)) {
        if (embedding_[u] == embedding_[v]) continue;
        Packet p;
        p.src = embedding_[u];
        p.dst = embedding_[v];
        p.via = p.dst;
        p.payload = configs[u];
        p.tag = u;
        p.tag2 = v;
        packets.push_back(p);
      }
    }
    result.packets_routed += packets.size();
    UPN_OBS_COUNT("sim.universal.packets_routed", packets.size());
    std::fill(received_ok.begin(), received_ok.end(), 0);

    if (!packets.empty()) {
      const bool log_transfers = options.emit_protocol;
      const RouteResult routed = router.route(std::move(packets), *policy, log_transfers);
      comm_steps_t = routed.steps;
      UPN_INVARIANT(routed.packets_lost == 0,
                    "fault-free routing must deliver every packet");
      for (const Packet& p : routed.packets) {
        const std::uint32_t slot = slot_in(p.tag2, p.tag);
        received[slot] = p.payload;
        received_ok[slot] = 1;
      }
      if (options.emit_protocol) {
        // Each router step becomes one protocol step: every transfer is a
        // send at the source plus a receive at the target, carrying the
        // pebble (P_u, t-1).  The single-port router guarantees the
        // transfers of a step form a matching, hence one op per processor.
        std::size_t cursor = 0;
        for (std::uint32_t step = 0; step < routed.steps; ++step) {
          result.protocol->begin_step();
          for (; cursor < routed.transfers.size() && routed.transfers[cursor].step == step;
               ++cursor) {
            const Transfer& tr = routed.transfers[cursor];
            const PebbleType pebble{routed.packets[tr.packet].tag, t - 1};
            result.protocol->add(Op{OpKind::kSend, tr.from, pebble, tr.to});
            result.protocol->add(Op{OpKind::kReceive, tr.to, pebble, tr.from});
          }
        }
      }
    }
    }  // route span
    result.comm_steps += comm_steps_t;
    UPN_OBS_COUNT("sim.universal.comm_steps", comm_steps_t);

    // ---- Phase 2: computation (sequential per host, parallel across). ----
    UPN_OBS_SPAN("sim.universal.compute");
    std::vector<Config> neighbor_configs;
    neighbor_configs.reserve(guest.max_degree());
    for (NodeId v = 0; v < n; ++v) {
      neighbor_configs.clear();
      for (std::uint32_t s = guest_off[v]; s < guest_off[v + 1]; ++s) {
        const NodeId w = guest_adj[s];
        if (embedding_[w] == embedding_[v]) {
          neighbor_configs.push_back(configs[w]);  // local guest, no packet
        } else {
          UPN_INVARIANT(received_ok[s] != 0,
                        "UniversalSimulator: missing routed configuration");
          if (received_ok[s] == 0) continue;  // log-and-continue: skip the neighbor
          neighbor_configs.push_back(received[s]);
        }
      }
      next[v] = next_config(configs[v], neighbor_configs);
    }
    configs.swap(next);
    result.compute_steps += load_;
    UPN_OBS_COUNT("sim.universal.compute_steps", load_);
    if (options.emit_protocol) {
      for (std::uint32_t round = 0; round < load_; ++round) {
        result.protocol->begin_step();
        for (std::uint32_t q = 0; q < host.num_nodes(); ++q) {
          if (round < guests_of_[q].size()) {
            result.protocol->add(
                Op{OpKind::kGenerate, q, PebbleType{guests_of_[q][round], t}, 0});
          }
        }
      }
    }
  }

  if (options.emit_protocol) {
    // Every router step and every computation round became exactly one
    // pebble-protocol step, so the protocol's T' is the simulated T'.
    UPN_ENSURE(result.protocol->host_steps() == result.comm_steps + result.compute_steps,
               "emitted protocol must account for every host step");
    UPN_ENSURE(result.protocol->guest_steps() == guest_steps,
               "emitted protocol must cover the requested guest horizon");
  }
  result.host_steps = result.comm_steps + result.compute_steps;
  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.inefficiency = n == 0 ? 0.0 : result.slowdown * host.num_nodes() / n;

  // ---- End-to-end verification against the direct execution. ----
  UPN_OBS_SPAN("sim.universal.validate");
  const std::vector<Config> reference = run_reference(guest, options.seed, guest_steps);
  result.configs_match = reference == configs;
  UPN_OBS_COUNT("sim.universal.runs", 1);
  return result;
}

}  // namespace upn
