// Slowdown measurement sweeps: the glue between the universal simulator and
// the trade-off experiments (THM2.1, UB-vs-LB).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/universal_sim.hpp"
#include "src/topology/graph.hpp"
#include "src/util/par.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// One row of the trade-off table.
struct SlowdownRow {
  std::uint32_t n = 0;          ///< guest size
  std::uint32_t m = 0;          ///< host size
  std::uint32_t load = 0;       ///< ceil-balanced embedding load
  double slowdown = 0.0;        ///< measured s
  double inefficiency = 0.0;    ///< measured k = s m / n
  double load_bound = 0.0;      ///< n / m (the trivial lower bound)
  double paper_bound = 0.0;     ///< (n/m) * log2(m): Theorem 2.1's shape
  double normalized = 0.0;      ///< s / paper_bound: should be Theta(1)
  bool verified = false;        ///< configurations matched the reference
};

/// Measures the slowdown of simulating `guest` on `host` for `guest_steps`
/// steps with a random balanced embedding.
[[nodiscard]] SlowdownRow measure_slowdown(const Graph& guest, const Graph& host,
                                           std::uint32_t guest_steps, Rng& rng,
                                           PortModel port_model = PortModel::kSinglePort);

/// Theorem 2.1 sweep: fixed guest, butterfly hosts of increasing dimension
/// up to max_host_size.  One row per host.
[[nodiscard]] std::vector<SlowdownRow> sweep_butterfly_hosts(const Graph& guest,
                                                             std::uint32_t guest_steps,
                                                             std::uint32_t max_host_size,
                                                             Rng& rng);

/// The same sweep with one pool task per (guest, host) grid point.  Point i
/// draws from its own Rng::stream(seed, i) and rows are collected by index,
/// so the table is byte-identical for every pool size (including the serial
/// size-1 pool); it differs numerically from the shared-rng serial sweep
/// above only because the random streams are partitioned per point.
[[nodiscard]] std::vector<SlowdownRow> sweep_butterfly_hosts_par(
    const Graph& guest, std::uint32_t guest_steps, std::uint32_t max_host_size,
    std::uint64_t seed, ThreadPool& pool);

}  // namespace upn
