#include "src/core/complete_sim.hpp"

#include <stdexcept>

#include "src/core/embedding.hpp"
#include "src/util/rng.hpp"

namespace upn {

std::vector<NodeId> complete_step_permutation(std::uint32_t n, std::uint32_t t,
                                              std::uint64_t pattern_seed) {
  Rng rng{mix64(pattern_seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)))};
  return rng.permutation(n);
}

Config complete_next_config(Config own, Config received) noexcept {
  const Config inputs[1] = {received};
  return next_config(own, inputs);
}

std::vector<Config> run_complete_reference(std::uint32_t n, std::uint64_t seed,
                                           std::uint64_t pattern_seed, std::uint32_t steps) {
  std::vector<Config> configs(n), next(n);
  for (NodeId i = 0; i < n; ++i) configs[i] = initial_config(seed, i);
  for (std::uint32_t t = 1; t <= steps; ++t) {
    const auto perm = complete_step_permutation(n, t, pattern_seed);
    // received[j] = config of the unique i with perm[i] = j.
    std::vector<Config> received(n);
    for (NodeId i = 0; i < n; ++i) received[perm[i]] = configs[i];
    for (NodeId j = 0; j < n; ++j) next[j] = complete_next_config(configs[j], received[j]);
    configs.swap(next);
  }
  return configs;
}

CompleteSimResult run_complete_simulation(std::uint32_t n, const Graph& host,
                                          const std::vector<NodeId>& embedding,
                                          std::uint32_t guest_steps, RoutingPolicy& policy,
                                          PortModel port_model, std::uint64_t seed,
                                          std::uint64_t pattern_seed) {
  if (embedding.size() != n) {
    throw std::invalid_argument{"run_complete_simulation: embedding size mismatch"};
  }
  const std::uint32_t m = host.num_nodes();
  const std::uint32_t load = embedding_load(embedding, m);
  SyncRouter router{host, port_model};

  CompleteSimResult result;
  result.guest_steps = guest_steps;

  std::vector<Config> configs(n), next(n), received(n);
  for (NodeId i = 0; i < n; ++i) configs[i] = initial_config(seed, i);

  for (std::uint32_t t = 1; t <= guest_steps; ++t) {
    const auto perm = complete_step_permutation(n, t, pattern_seed);
    // Each guest sends exactly one message: a ceil(n/m)-relation on hosts
    // whose pattern is only known now -- the online-routing case.
    std::vector<Packet> packets;
    packets.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
      const NodeId target_guest = perm[i];
      if (embedding[i] == embedding[target_guest]) {
        received[target_guest] = configs[i];  // local delivery
        continue;
      }
      Packet p;
      p.src = embedding[i];
      p.dst = embedding[target_guest];
      p.via = p.dst;
      p.payload = configs[i];
      p.tag = i;
      p.tag2 = target_guest;
      packets.push_back(p);
    }
    if (!packets.empty()) {
      const RouteResult routed = router.route(std::move(packets), policy);
      result.host_steps += routed.steps;
      for (const Packet& p : routed.packets) received[p.tag2] = p.payload;
    }
    for (NodeId j = 0; j < n; ++j) next[j] = complete_next_config(configs[j], received[j]);
    configs.swap(next);
    result.host_steps += load;
  }

  result.slowdown =
      guest_steps == 0 ? 0.0 : static_cast<double>(result.host_steps) / guest_steps;
  result.inefficiency = n == 0 ? 0.0 : result.slowdown * m / n;
  result.configs_match =
      run_complete_reference(n, seed, pattern_seed, guest_steps) == configs;
  return result;
}

}  // namespace upn
