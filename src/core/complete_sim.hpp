// Simulating the complete network (Section 2, last paragraph).
//
// "Theorem 2.1 is also true if the complete network is simulated.  In
// contrast to the above construction, we now need an ONLINE routing
// algorithm for the ceil(n/m)-ceil(n/m) relations, because they are no
// longer known in advance."
//
// The guest here is K_n running an oblivious computation: at step t every
// processor i sends its configuration to pi_t(i), where pi_t is a
// pseudorandom permutation drawn from the step index (oblivious: the
// pattern does not depend on the data, but it differs every step, so no
// off-line schedule can be precomputed).  The host routes each step's
// fresh permutation online (greedy or Valiant) and is checked against the
// direct execution.  [14]: for such simulations s = Omega(log n) holds
// independent of m.
#pragma once

#include <cstdint>
#include <vector>

#include "src/compute/machine.hpp"
#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"

namespace upn {

/// The (oblivious) communication target of processor i at guest step t.
[[nodiscard]] std::vector<NodeId> complete_step_permutation(std::uint32_t n, std::uint32_t t,
                                                            std::uint64_t pattern_seed);

/// Next configuration of a complete-network processor: own config mixed
/// with the single received config.
[[nodiscard]] Config complete_next_config(Config own, Config received) noexcept;

/// Direct execution of T steps of the oblivious K_n computation.
[[nodiscard]] std::vector<Config> run_complete_reference(std::uint32_t n, std::uint64_t seed,
                                                         std::uint64_t pattern_seed,
                                                         std::uint32_t steps);

struct CompleteSimResult {
  std::uint32_t guest_steps = 0;
  std::uint32_t host_steps = 0;
  double slowdown = 0.0;
  double inefficiency = 0.0;
  bool configs_match = false;
};

/// Simulates T steps of the oblivious K_n computation on `host` with a
/// balanced embedding, routing each step's permutation online.
[[nodiscard]] CompleteSimResult run_complete_simulation(
    std::uint32_t n, const Graph& host, const std::vector<NodeId>& embedding,
    std::uint32_t guest_steps, RoutingPolicy& policy,
    PortModel port_model = PortModel::kSinglePort, std::uint64_t seed = 0x5eed,
    std::uint64_t pattern_seed = 0xbeef);

}  // namespace upn
