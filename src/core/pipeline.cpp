#include "src/core/pipeline.hpp"

#include <cmath>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/fragment.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/g0.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {

PipelineReport run_paper_pipeline(const PipelineConfig& config) {
  Rng rng{config.seed};
  PipelineReport report;

  // ---- Construction: host, G_0, planted guest. ----
  const Graph host = make_butterfly(config.butterfly_dimension);
  report.m = host.num_nodes();
  report.a = g0_block_parameter(report.m);
  report.n = g0_round_guest_size(config.guest_size_hint, report.a);
  const G0 g0 = make_g0(report.n, report.m, rng);
  report.expander_beta = g0.expander.beta;
  const Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);

  // ---- Theorem 2.1 simulation with protocol emission. ----
  UniversalSimulator sim{guest, host, make_random_embedding(report.n, report.m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  options.seed = rng();
  const UniversalSimResult result = sim.run(config.guest_steps, options);
  report.slowdown = result.slowdown;
  report.inefficiency = result.inefficiency;
  report.load_bound = static_cast<double>(report.n) / report.m;
  report.paper_shape = report.load_bound * std::log2(static_cast<double>(report.m));
  report.configs_verified = result.configs_match;

  // ---- Section 3.1 validation. ----
  const ValidationResult validation = validate_protocol(*result.protocol, guest, host);
  report.protocol_valid = validation.ok;
  report.protocol_error = validation.error;
  report.protocol_ops = result.protocol->num_ops();

  // ---- Lower-bound machinery on the emitted protocol. ----
  const ProtocolMetrics metrics{*result.protocol};
  const Lemma312Report lemma = verify_lemma312(metrics, g0);
  report.z_size = static_cast<std::uint32_t>(lemma.z_set.size());
  report.lemma312_holds = lemma.z_large_enough && !lemma.choices.empty();
  for (const Lemma312Choice& choice : lemma.choices) {
    report.lemma312_holds = report.lemma312_holds && choice.roots_ok && choice.trees_ok;
  }
  const ExpansionReport expansion =
      analyze_expansion(metrics, g0.expander.alpha, g0.expander.beta);
  report.expansion_caps_hold = expansion.all_ok;
  const Fragment fragment = extract_fragment(metrics, config.guest_steps / 2);
  report.fragment_log2_multiplicity = log2_multiplicity_bound(fragment, kGuestDegree);
  report.fragment_sum_b = fragment.total_b_size();

  // ---- Theorem 3.1 verdict on this real data point. ----
  const TradeoffVerdict verdict = check_network(report.n, report.m, report.slowdown);
  report.ruled_out_by_counting = verdict.ruled_out_paper_constants;
  return report;
}

}  // namespace upn
