// Batcher's bitonic sorter: depth O(log^2 n), and -- crucially for the
// Galil-Paul route to universality -- every layer's comparators are aligned
// with one hypercube dimension, so a layer costs one communication step on
// hypercubic hosts.
#pragma once

#include <cstdint>

#include "src/sorting/comparator_network.hpp"

namespace upn {

/// The bitonic sorting network on n = 2^k wires.
[[nodiscard]] ComparatorNetwork make_bitonic_sorter(std::uint32_t n);

/// Depth of the bitonic sorter on n = 2^k wires: k(k+1)/2.
[[nodiscard]] std::uint32_t bitonic_depth(std::uint32_t n);

}  // namespace upn
