#include "src/sorting/columnsort.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace upn {

namespace {

void sort_all_columns(std::vector<std::uint64_t>& values, std::uint32_t r, std::uint32_t s,
                      const ColumnSorter& sorter) {
  for (std::uint32_t j = 0; j < s; ++j) {
    sorter(std::span<std::uint64_t>{values.data() + static_cast<std::size_t>(j) * r, r});
  }
}

}  // namespace

ColumnsortStats columnsort(std::vector<std::uint64_t>& values, std::uint32_t r,
                           std::uint32_t s, const ColumnSorter& sorter) {
  if (s == 0 || r == 0 || values.size() != static_cast<std::size_t>(r) * s) {
    throw std::invalid_argument{"columnsort: values.size() must equal r*s"};
  }
  if (s > 1) {
    if (r % s != 0) throw std::invalid_argument{"columnsort: r must be divisible by s"};
    const std::uint64_t bound = 2ull * (s - 1) * (s - 1);
    if (r < bound) throw std::invalid_argument{"columnsort: requires r >= 2(s-1)^2"};
  }
  ColumnsortStats stats;
  if (s == 1) {
    sorter(std::span<std::uint64_t>{values});
    stats.column_sort_rounds = 1;
    return stats;
  }

  const std::size_t n = values.size();
  std::vector<std::uint64_t> scratch(n);

  // Step 1: sort columns.
  sort_all_columns(values, r, s, sorter);
  ++stats.column_sort_rounds;

  // Step 2: "transpose": read column-major, write row-major.
  // Entry at matrix position (i, j) receives sequence element i*s + j.
  for (std::uint32_t j = 0; j < s; ++j) {
    for (std::uint32_t i = 0; i < r; ++i) {
      scratch[static_cast<std::size_t>(j) * r + i] =
          values[static_cast<std::size_t>(i) * s + j];
    }
  }
  values.swap(scratch);
  ++stats.permutation_rounds;

  // Step 3: sort columns.
  sort_all_columns(values, r, s, sorter);
  ++stats.column_sort_rounds;

  // Step 4: "untranspose": inverse of step 2.
  for (std::uint32_t j = 0; j < s; ++j) {
    for (std::uint32_t i = 0; i < r; ++i) {
      scratch[static_cast<std::size_t>(i) * s + j] =
          values[static_cast<std::size_t>(j) * r + i];
    }
  }
  values.swap(scratch);
  ++stats.permutation_rounds;

  // Step 5: sort columns.
  sort_all_columns(values, r, s, sorter);
  ++stats.column_sort_rounds;

  // Step 6: shift forward by floor(r/2) with -inf/+inf sentinels, making an
  // r x (s+1) matrix.
  const std::uint32_t half = r / 2;
  std::vector<std::uint64_t> shifted(static_cast<std::size_t>(r) * (s + 1));
  std::fill(shifted.begin(), shifted.begin() + half, std::numeric_limits<std::uint64_t>::min());
  std::copy(values.begin(), values.end(), shifted.begin() + half);
  std::fill(shifted.begin() + half + static_cast<std::ptrdiff_t>(n), shifted.end(),
            std::numeric_limits<std::uint64_t>::max());
  ++stats.permutation_rounds;

  // Step 7: sort the s+1 columns.
  sort_all_columns(shifted, r, s + 1, sorter);
  ++stats.column_sort_rounds;

  // Step 8: unshift (drop the sentinels).
  std::copy(shifted.begin() + half, shifted.begin() + half + static_cast<std::ptrdiff_t>(n),
            values.begin());
  ++stats.permutation_rounds;
  return stats;
}

ColumnsortStats columnsort(std::vector<std::uint64_t>& values, std::uint32_t r,
                           std::uint32_t s) {
  return columnsort(values, r, s, [](std::span<std::uint64_t> column) {
    std::sort(column.begin(), column.end());
  });
}

std::uint32_t columnsort_pick_shape(std::uint64_t n) {
  std::uint32_t best = (n >= 1) ? 1u : 0u;
  for (std::uint32_t s = 2; static_cast<std::uint64_t>(s) * s <= n; ++s) {
    if (n % s != 0) continue;
    const std::uint64_t r = n / s;
    if (r % s == 0 && r >= 2ull * (s - 1) * (s - 1)) best = s;
  }
  return best;
}

}  // namespace upn
