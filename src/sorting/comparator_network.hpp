// Comparator networks.
//
// Section 1/2 background: Galil and Paul reduce universality to sorting --
// "each network M of size m that can sort n numbers in time sort(n, m) is
// n-universal with slowdown O(sort(n, m))" -- and the paper's deterministic
// h-h routing alternative applies Leighton's Columnsort to a sorting
// circuit.  This header gives the common representation: a network is a
// sequence of layers, each a set of pairwise-disjoint comparators; one layer
// is one parallel communication step on a host whose edges realize the
// comparator pairs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace upn {

/// Compare-exchange on wires (low, high): after it, value at `low` <= value
/// at `high`.  `low > high` as indices is legal and yields a descending
/// comparator (as bitonic merge stages require).
struct Comparator {
  std::uint32_t low = 0;
  std::uint32_t high = 0;
};

class ComparatorNetwork {
 public:
  explicit ComparatorNetwork(std::uint32_t wires, std::string name = "network");

  /// Starts a new layer; subsequent add() calls land in it.
  void begin_layer();

  /// Adds a comparator to the current layer.  Throws if a wire is already
  /// used in this layer or out of range.
  void add(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] std::uint32_t wires() const noexcept { return wires_; }
  [[nodiscard]] std::uint32_t depth() const noexcept {
    return static_cast<std::uint32_t>(layers_.size());
  }
  [[nodiscard]] std::uint64_t size() const;  ///< total comparator count
  [[nodiscard]] const std::vector<std::vector<Comparator>>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Applies the network in place.
  void apply(std::span<std::uint64_t> values) const;

  /// Applies the network to keys, swapping the parallel payloads alongside
  /// (a sorting network moving records, not just keys).
  void apply_with_payload(std::span<std::uint64_t> keys,
                          std::span<std::uint64_t> payloads) const;

  /// Exhaustive 0-1-principle check; only feasible for wires <= ~22.
  [[nodiscard]] bool is_sorting_network() const;

 private:
  std::uint32_t wires_;
  std::string name_;
  std::vector<std::vector<Comparator>> layers_;
  std::vector<char> used_in_layer_;  ///< wire -> used in current layer
};

}  // namespace upn
