// Odd-even transposition sort: depth exactly n, nearest-neighbor comparators
// only -- the natural sorter for path/ring/mesh hosts and the classic
// building block of mesh Columnsort.
#pragma once

#include <cstdint>

#include "src/sorting/comparator_network.hpp"

namespace upn {

/// The odd-even transposition sorting network on n wires (any n >= 2).
[[nodiscard]] ComparatorNetwork make_odd_even_transposition_sorter(std::uint32_t n);

}  // namespace upn
