#include "src/sorting/sort_route.hpp"

#include <deque>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/routing/decompose.hpp"

namespace upn {

namespace {

/// Key layout: destination in the high 32 bits, source in the low 32 bits,
/// so sorting by key sorts by destination and the payload rides along.
constexpr std::uint64_t pack(std::uint32_t dst, std::uint32_t src) {
  return (static_cast<std::uint64_t>(dst) << 32) | src;
}
constexpr std::uint32_t unpack_dst(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}

}  // namespace

SortRouteStats route_permutation_by_sorting(const std::vector<std::uint32_t>& perm,
                                            const ComparatorNetwork& sorter) {
  const auto n = static_cast<std::uint32_t>(perm.size());
  if (n != sorter.wires()) {
    throw std::invalid_argument{"route_permutation_by_sorting: size mismatch"};
  }
  std::vector<std::uint64_t> keys(n);
  for (std::uint32_t i = 0; i < n; ++i) keys[i] = pack(perm[i], i);
  sorter.apply(keys);
  SortRouteStats stats;
  stats.rounds = 1;
  stats.comparator_steps = sorter.depth();
  stats.delivered = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (unpack_dst(keys[i]) != i) {
      stats.delivered = false;
      break;
    }
  }
  return stats;
}

SortRouteStats route_relation_by_sorting(const HhProblem& problem,
                                         const ComparatorNetwork& sorter) {
  const std::uint32_t n = problem.num_nodes();
  if (n != sorter.wires()) {
    throw std::invalid_argument{"route_relation_by_sorting: size mismatch"};
  }
  SortRouteStats stats;
  stats.delivered = true;
  for (const PermutationRound& round : decompose_into_permutations(problem)) {
    // Complete the partial permutation with dummy packets on the unused
    // source/destination pairs.
    std::vector<std::uint32_t> perm(n, 0xffffffffu);
    std::vector<char> dst_used(n, 0);
    for (const Demand& d : round) {
      perm[d.src] = d.dst;
      dst_used[d.dst] = 1;
    }
    std::uint32_t free_dst = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (perm[v] != 0xffffffffu) continue;
      while (dst_used[free_dst]) ++free_dst;
      perm[v] = free_dst;
      dst_used[free_dst] = 1;
    }
    const SortRouteStats round_stats = route_permutation_by_sorting(perm, sorter);
    stats.rounds += 1;
    stats.comparator_steps += round_stats.comparator_steps;
    stats.delivered = stats.delivered && round_stats.delivered;
  }
  return stats;
}

SortRouteDelivery deliver_relation_by_sorting(const HhProblem& problem,
                                              const std::vector<std::uint64_t>& payloads,
                                              const ComparatorNetwork& sorter) {
  const std::uint32_t n = problem.num_nodes();
  if (n != sorter.wires()) {
    throw std::invalid_argument{"deliver_relation_by_sorting: size mismatch"};
  }
  if (payloads.size() != problem.size()) {
    throw std::invalid_argument{"deliver_relation_by_sorting: payload count mismatch"};
  }
  constexpr std::uint64_t kDummy = std::numeric_limits<std::uint64_t>::max();

  // Recover demand identity: bucket global indices by (src, dst).
  std::map<std::pair<NodeId, NodeId>, std::deque<std::uint64_t>> buckets;
  for (std::size_t d = 0; d < problem.demands().size(); ++d) {
    const Demand& demand = problem.demands()[d];
    buckets[{demand.src, demand.dst}].push_back(d);
  }

  SortRouteDelivery delivery;
  delivery.delivered.resize(n);
  delivery.stats.delivered = true;
  std::vector<std::uint64_t> keys(n), slots(n);
  for (const PermutationRound& round : decompose_into_permutations(problem)) {
    std::vector<std::uint32_t> dst_of(n, 0xffffffffu);
    std::vector<std::uint64_t> index_of(n, kDummy);
    std::vector<char> dst_used(n, 0);
    for (const Demand& d : round) {
      dst_of[d.src] = d.dst;
      dst_used[d.dst] = 1;
      auto& bucket = buckets[{d.src, d.dst}];
      index_of[d.src] = bucket.front();
      bucket.pop_front();
    }
    std::uint32_t free_dst = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (dst_of[v] != 0xffffffffu) continue;
      while (dst_used[free_dst]) ++free_dst;
      dst_of[v] = free_dst;
      dst_used[free_dst] = 1;
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      keys[v] = pack(dst_of[v], v);
      slots[v] = index_of[v];
    }
    sorter.apply_with_payload(keys, slots);
    for (std::uint32_t j = 0; j < n; ++j) {
      if (unpack_dst(keys[j]) != j) {
        delivery.stats.delivered = false;
        continue;
      }
      if (slots[j] != kDummy) {
        delivery.delivered[j].push_back(payloads[slots[j]]);
      }
    }
    delivery.stats.rounds += 1;
    delivery.stats.comparator_steps += sorter.depth();
  }
  return delivery;
}

}  // namespace upn
