#include "src/sorting/comparator_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace upn {

ComparatorNetwork::ComparatorNetwork(std::uint32_t wires, std::string name)
    : wires_(wires), name_(std::move(name)), used_in_layer_(wires, 0) {}

void ComparatorNetwork::begin_layer() {
  layers_.emplace_back();
  std::fill(used_in_layer_.begin(), used_in_layer_.end(), 0);
}

void ComparatorNetwork::add(std::uint32_t a, std::uint32_t b) {
  if (layers_.empty()) begin_layer();
  if (a >= wires_ || b >= wires_ || a == b) {
    throw std::invalid_argument{"ComparatorNetwork::add: bad wire pair"};
  }
  if (used_in_layer_[a] || used_in_layer_[b]) {
    throw std::invalid_argument{"ComparatorNetwork::add: wire reused within a layer"};
  }
  used_in_layer_[a] = used_in_layer_[b] = 1;
  layers_.back().push_back(Comparator{a, b});
}

std::uint64_t ComparatorNetwork::size() const {
  std::uint64_t total = 0;
  for (const auto& layer : layers_) total += layer.size();
  return total;
}

void ComparatorNetwork::apply(std::span<std::uint64_t> values) const {
  if (values.size() != wires_) {
    throw std::invalid_argument{"ComparatorNetwork::apply: size mismatch"};
  }
  for (const auto& layer : layers_) {
    for (const Comparator& c : layer) {
      if (values[c.low] > values[c.high]) std::swap(values[c.low], values[c.high]);
    }
  }
}

void ComparatorNetwork::apply_with_payload(std::span<std::uint64_t> keys,
                                           std::span<std::uint64_t> payloads) const {
  if (keys.size() != wires_ || payloads.size() != wires_) {
    throw std::invalid_argument{"ComparatorNetwork::apply_with_payload: size mismatch"};
  }
  for (const auto& layer : layers_) {
    for (const Comparator& c : layer) {
      if (keys[c.low] > keys[c.high]) {
        std::swap(keys[c.low], keys[c.high]);
        std::swap(payloads[c.low], payloads[c.high]);
      }
    }
  }
}

bool ComparatorNetwork::is_sorting_network() const {
  if (wires_ > 22) {
    throw std::invalid_argument{"is_sorting_network: exhaustive check limited to 22 wires"};
  }
  std::vector<std::uint64_t> values(wires_);
  for (std::uint64_t pattern = 0; pattern < (std::uint64_t{1} << wires_); ++pattern) {
    for (std::uint32_t w = 0; w < wires_; ++w) values[w] = (pattern >> w) & 1u;
    apply(values);
    if (!std::is_sorted(values.begin(), values.end())) return false;
  }
  return true;
}

}  // namespace upn
