#include "src/sorting/oets.hpp"

#include <stdexcept>
#include <string>

namespace upn {

ComparatorNetwork make_odd_even_transposition_sorter(std::uint32_t n) {
  if (n < 2) {
    throw std::invalid_argument{"make_odd_even_transposition_sorter: n must be >= 2"};
  }
  ComparatorNetwork network{n, "oets(" + std::to_string(n) + ")"};
  for (std::uint32_t round = 0; round < n; ++round) {
    network.begin_layer();
    for (std::uint32_t i = round % 2; i + 1 < n; i += 2) {
      network.add(i, i + 1);
    }
  }
  return network;
}

}  // namespace upn
