#include "src/sorting/bitonic.hpp"

#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

ComparatorNetwork make_bitonic_sorter(std::uint32_t n) {
  if (!is_power_of_two(n) || n < 2) {
    throw std::invalid_argument{"make_bitonic_sorter: n must be a power of two >= 2"};
  }
  ComparatorNetwork network{n, "bitonic(" + std::to_string(n) + ")"};
  // Standard iterative formulation: stage k merges bitonic runs of length
  // 2^k; within a stage, j halves from 2^(k-1) down to 1.
  for (std::uint32_t k = 2; k <= n; k <<= 1) {
    for (std::uint32_t j = k >> 1; j > 0; j >>= 1) {
      network.begin_layer();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t partner = i ^ j;
        if (partner <= i) continue;
        // Ascending blocks where bit k of i is 0, descending otherwise.
        if ((i & k) == 0) {
          network.add(i, partner);
        } else {
          network.add(partner, i);
        }
      }
    }
  }
  return network;
}

std::uint32_t bitonic_depth(std::uint32_t n) {
  if (!is_power_of_two(n) || n < 2) {
    throw std::invalid_argument{"bitonic_depth: n must be a power of two >= 2"};
  }
  const std::uint32_t k = floor_log2(n);
  return k * (k + 1) / 2;
}

}  // namespace upn
