// Sorting as routing: the Galil-Paul route to universality.
//
// Galil & Paul [6]: a network that sorts n keys in sort(n, m) steps is
// n-universal with slowdown O(sort(n, m)).  The mechanism is that routing a
// (full) permutation reduces to sorting packets by destination: after the
// sort, the packet destined for position j sits at position j.  Partial
// permutations are completed with dummy packets; h-relations decompose into
// h permutations first (decompose.hpp).
//
// The comparator-network layers bound the communication steps on any host
// whose edges realize each layer (one layer = one step on hypercubic hosts
// for bitonic).  The GP experiment compares this O(log^2 m)-per-round cost
// against the paper's direct O(log m) off-line routing.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/hh_problem.hpp"
#include "src/sorting/comparator_network.hpp"

namespace upn {

struct SortRouteStats {
  std::uint32_t rounds = 0;            ///< permutation rounds routed
  std::uint64_t comparator_steps = 0;  ///< total layers executed
  bool delivered = false;              ///< all packets reached their dst
};

/// Routes a full permutation (perm[i] = destination of the packet at i) on
/// an array of sorter.wires() positions by destination-sorting.
[[nodiscard]] SortRouteStats route_permutation_by_sorting(
    const std::vector<std::uint32_t>& perm, const ComparatorNetwork& sorter);

/// Routes an arbitrary h-relation by decomposing into partial permutations,
/// completing each with dummies, and sorting each round.
[[nodiscard]] SortRouteStats route_relation_by_sorting(const HhProblem& problem,
                                                       const ComparatorNetwork& sorter);

/// One payload-carrying delivery: `payloads[i]` is the data of the i-th
/// demand; on return, `delivered[v]` holds the payloads that arrived at
/// node v (in round order).  This makes sorting-based routing a real data
/// mover, so the Galil-Paul simulator can be verified end to end.
struct SortRouteDelivery {
  SortRouteStats stats;
  std::vector<std::vector<std::uint64_t>> delivered;  ///< per destination node
};
[[nodiscard]] SortRouteDelivery deliver_relation_by_sorting(
    const HhProblem& problem, const std::vector<std::uint64_t>& payloads,
    const ComparatorNetwork& sorter);

}  // namespace upn
