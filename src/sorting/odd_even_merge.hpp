// Batcher's odd-even merge sort: depth O(log^2 n) with slightly smaller
// constants than bitonic; the default column sorter inside Columnsort.
#pragma once

#include <cstdint>

#include "src/sorting/comparator_network.hpp"

namespace upn {

/// The odd-even merge sorting network on n = 2^k wires.
[[nodiscard]] ComparatorNetwork make_odd_even_merge_sorter(std::uint32_t n);

}  // namespace upn
