// Leighton's Columnsort (1985).
//
// The paper's deterministic h-h routing alternative (Section 2) applies
// "Leighton's Columnsort approach to the AKS sorting circuit".  Columnsort
// sorts an r x s matrix (column-major order) using 8 steps, 4 of which sort
// columns independently; correctness requires r >= 2(s-1)^2.  Any column
// sorter can be plugged in, so a depth-D sorter on r keys yields a depth
// O(D) sorter on r*s keys -- the size amplification the paper exploits.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace upn {

/// Sorts one column in place.
using ColumnSorter = std::function<void(std::span<std::uint64_t>)>;

struct ColumnsortStats {
  std::uint32_t column_sort_rounds = 0;  ///< parallel column-sort phases (4)
  std::uint32_t permutation_rounds = 0;  ///< transpose/shift data movements (4)
};

/// Sorts `values` (interpreted as an r x s matrix in column-major order)
/// with Columnsort.  Requires values.size() == r*s, s >= 1, r divisible by s,
/// and r >= 2(s-1)^2; throws otherwise.  Returns phase statistics.
ColumnsortStats columnsort(std::vector<std::uint64_t>& values, std::uint32_t r,
                           std::uint32_t s, const ColumnSorter& sorter);

/// Convenience overload using std::sort per column.
ColumnsortStats columnsort(std::vector<std::uint64_t>& values, std::uint32_t r,
                           std::uint32_t s);

/// Largest s such that (r = n/s, s) satisfies the Columnsort preconditions
/// for total size n; returns 0 if none (n prime and too small, etc.).
[[nodiscard]] std::uint32_t columnsort_pick_shape(std::uint64_t n);

}  // namespace upn
