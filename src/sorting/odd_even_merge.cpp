#include "src/sorting/odd_even_merge.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/math.hpp"

namespace upn {

ComparatorNetwork make_odd_even_merge_sorter(std::uint32_t n) {
  if (!is_power_of_two(n) || n < 2) {
    throw std::invalid_argument{"make_odd_even_merge_sorter: n must be a power of two >= 2"};
  }
  ComparatorNetwork network{n, "odd_even_merge(" + std::to_string(n) + ")"};
  // Iterative Batcher: p = subsequence length being merged, k = stride.
  // Comparators within one (p, k) round touch disjoint wires -> one layer.
  for (std::uint32_t p = 1; p < n; p <<= 1) {
    for (std::uint32_t k = p; k >= 1; k >>= 1) {
      network.begin_layer();
      for (std::uint32_t j = k % p; j + k < n; j += 2 * k) {
        for (std::uint32_t i = 0; i < k; ++i) {
          if (j + i + k >= n) break;
          // Only compare wires within the same 2p-block.
          if ((j + i) / (2 * p) == (j + i + k) / (2 * p)) {
            network.add(j + i, j + i + k);
          }
        }
      }
    }
  }
  return network;
}

}  // namespace upn
