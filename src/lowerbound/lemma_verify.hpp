// Empirical verification of Lemma 3.12 / 3.13 on real simulation protocols.
//
// Lemma 3.12: for every k-inefficient protocol S of a guest containing G_0
// there is a large set Z_S of guest time steps (|Z_S| >= T/4) such that for
// each t_0 in Z_S one can pick per-block roots r_1..r_h with
//   (1)  sum_j q_{r_j, t_0 - a}  <=  8 (n / a^2) k
//   (2)  sum_j w_{r_j, t_0}      <=  384 n k
// where w is the dependency-tree weight (Definition 3.11).  We replay the
// selection procedure of the proof against a concrete protocol (from the
// Theorem 2.1 simulator) and check both inequalities with the measured k.
//
// One deliberate deviation: our constructed dependency trees have measured
// depth ~2a (see dependency_tree.hpp), so the roots live at t_0 - depth
// rather than t_0 - a; the averaging argument is depth-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "src/lowerbound/dependency_tree.hpp"
#include "src/pebble/metrics.hpp"
#include "src/topology/g0.hpp"

namespace upn {

struct Lemma312Choice {
  std::uint32_t t0 = 0;
  std::vector<NodeId> roots;          ///< r_j per block
  std::uint64_t sum_root_weights = 0; ///< sum_j q_{r_j, t0 - depth}
  std::uint64_t sum_tree_weights = 0; ///< sum_j w_{r_j, t0}
  double bound_roots = 0;             ///< exact Markov bound (guaranteed)
  double bound_trees = 0;             ///< exact Markov bound (guaranteed)
  double paper_bound_roots = 0;       ///< paper form: 8 (n/a^2) k
  double paper_bound_trees = 0;       ///< paper form: 8 B n k / a^2 (B = tree size)
  bool roots_ok = false;
  bool trees_ok = false;
};

struct Lemma312Report {
  std::uint32_t tree_depth = 0;       ///< measured dependency-tree depth
  double inefficiency = 0;            ///< k of the protocol
  std::vector<std::uint32_t> z_set;   ///< guest times passing both averages
  bool z_large_enough = false;        ///< |Z_S| >= (T - depth) / 4
  std::vector<Lemma312Choice> choices;///< one verified choice per t0 in Z
  double max_sum_q = 0;               ///< Lemma 3.13 (2) check: worst
  double bound_sum_q = 0;             ///< q n k with q = 384
  bool sum_q_ok = false;
};

/// Runs the Lemma 3.12 selection on `metrics` (a protocol simulating a guest
/// that contains `g0` as a subgraph) and reports every inequality.
[[nodiscard]] Lemma312Report verify_lemma312(const ProtocolMetrics& metrics, const G0& g0);

}  // namespace upn
