#include "src/lowerbound/main_lemma.hpp"

#include <cmath>

namespace upn {

MainLemmaReport verify_main_lemma(const ProtocolMetrics& metrics, const G0& g0) {
  MainLemmaReport report;
  report.averaging = verify_lemma312(metrics, g0);
  report.gamma = 0.5 * g0.expander.alpha * (1.0 - 1.0 / g0.expander.beta);
  const std::uint32_t n = metrics.num_guests();
  const std::uint32_t m = metrics.num_hosts();
  report.small_d_threshold = static_cast<double>(n) / std::sqrt(static_cast<double>(m));
  report.property1 = report.averaging.z_large_enough;
  report.property2_all = true;
  report.property3_all = true;

  for (const Lemma312Choice& choice : report.averaging.choices) {
    // Fragments need generators of (P_i, t0 + 1); the last guest step has
    // none, so the final element of Z_S carries no fragment.
    if (choice.t0 >= metrics.guest_steps()) continue;
    const Fragment fragment = extract_fragment(metrics, choice.t0);
    MainLemmaFragmentRow row;
    row.t0 = choice.t0;
    row.sum_b = fragment.total_b_size();
    // Property (2): sum q_{i,t0} is covered by the chosen trees' weights;
    // use the same guaranteed bound Lemma 3.12 produced for this t0.
    row.bound_sum_b = choice.bound_trees;
    row.property2 = static_cast<double>(row.sum_b) <= row.bound_sum_b;
    row.small_d = count_small_d(fragment, report.small_d_threshold);
    row.required_small_d = report.gamma * n;
    row.property3 = static_cast<double>(row.small_d) >= row.required_small_d;
    row.measured_gamma = static_cast<double>(row.small_d) / n;
    report.property2_all = report.property2_all && row.property2;
    report.property3_all = report.property3_all && row.property3;
    report.fragments.push_back(row);
  }
  return report;
}

}  // namespace upn
