#include "src/lowerbound/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace upn {

std::vector<TradeoffRow> lower_bound_sweep(double n, const std::vector<double>& ms,
                                           const CountingConstants& constants) {
  UPN_REQUIRE(n >= 2.0);
  std::vector<TradeoffRow> rows;
  rows.reserve(ms.size());
  for (const double m : ms) {
    TradeoffRow row;
    row.n = n;
    row.m = m;
    row.k_counting = min_feasible_inefficiency(n, m, constants);
    row.k_closed_form = closed_form_inefficiency(m, constants);
    row.slowdown_bound = std::max(1.0, row.k_counting * n / m);
    row.load_bound = std::max(1.0, n / m);
    row.ms_over_nlogm = (m * row.slowdown_bound) / (n * std::log2(m));
    rows.push_back(row);
  }
  UPN_ENSURE(rows.size() == ms.size());
  return rows;
}

TradeoffVerdict check_network(double n, double m, double s,
                              const CountingConstants& constants) {
  UPN_REQUIRE(n >= 2.0 && m >= 2.0 && s > 0.0);
  TradeoffVerdict verdict;
  const double k_min = min_feasible_inefficiency(n, m, constants);
  verdict.required_slowdown = std::max(1.0, k_min * n / m);
  verdict.ruled_out_paper_constants = s < verdict.required_slowdown;
  verdict.proposed_ms = m * s;
  verdict.bound_nlogm = n * std::log2(m);
  verdict.ruled_out_normalized = verdict.proposed_ms < verdict.bound_nlogm;
  UPN_ENSURE(verdict.required_slowdown >= 1.0);
  return verdict;
}

double upper_bound_slowdown(double n, double ell) {
  UPN_REQUIRE(n >= 2.0);
  const double s =
      ell <= 1.0 ? std::log2(n) : std::max(1.0, std::log2(n) / std::log2(ell));
  UPN_ENSURE(s >= 1.0);
  return s;
}

double upper_bound_size_for_slowdown(double n, double s0) {
  UPN_REQUIRE(n >= 2.0 && s0 > 0.0);
  const double ell = std::exp2(std::log2(n) / std::max(1.0, s0));
  UPN_ENSURE(n * ell >= n);
  return n * ell;
}

}  // namespace upn
