// The dependency graph Gamma_G of T steps of a guest G (Definition 3.7).
//
// Vertices are (P, t) for t in [0, T]; directed edges ((P, t), (P', t+1))
// whenever P = P' or {P, P'} is a guest edge.  (P, t) is an i-th predecessor
// of (P', t+i) iff dist_G(P, P') <= i, so reachability queries reduce to BFS
// balls -- which is how we expose them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Immediate predecessors of (node, t): node itself plus its neighbors
/// (valid for any t >= 1).
[[nodiscard]] std::vector<NodeId> dependency_predecessors(const Graph& guest, NodeId node);

/// True iff (from, t) -> (to, t + steps) in Gamma_G, i.e. dist(from, to) <= steps.
[[nodiscard]] bool dependency_reaches(const Graph& guest, NodeId from, NodeId to,
                                      std::uint32_t steps);

/// The i-step dependency ball: all nodes whose t-pebble (P, t) the pebble
/// (P', t + steps) can depend on -- the BFS ball of radius `steps`.
[[nodiscard]] std::vector<NodeId> dependency_ball(const Graph& guest, NodeId center,
                                                  std::uint32_t steps);

/// Number of (P', t') with a Gamma-path from (P, t), per time offset:
/// result[i] = |ball(P, i)|.  The "spreading function" of Section 1's
/// restricted-class discussion.
[[nodiscard]] std::vector<std::uint32_t> spreading_profile(const Graph& guest, NodeId center,
                                                           std::uint32_t max_steps);

}  // namespace upn
