#include "src/lowerbound/expansion.hpp"

#include <algorithm>
#include <limits>

#include "src/util/contracts.hpp"

namespace upn {

ExpansionReport analyze_expansion(const ProtocolMetrics& metrics, double alpha, double beta) {
  UPN_REQUIRE(alpha > 0.0 && alpha <= 1.0 && beta > 1.0);
  const std::uint32_t n = metrics.num_guests();
  const std::uint32_t T = metrics.guest_steps();
  const std::uint32_t T_prime = metrics.host_steps();
  const double threshold = alpha * n;

  ExpansionReport report;
  report.alpha = alpha;
  report.beta = beta;
  report.pebbles_per_phase = alpha * (1.0 - 1.0 / beta) * n;

  // first_gen sorted per t lets us binary-search tau_t: e_{t-1}(tau) is the
  // count of first-generation steps <= tau.
  std::vector<std::vector<std::uint32_t>> gen_steps(T + 1);
  for (std::uint32_t t = 1; t <= T; ++t) {
    gen_steps[t].reserve(n);
    for (NodeId i = 0; i < n; ++i) {
      const std::uint32_t first = metrics.first_generation_step(i, t);
      if (first != kNeverGenerated) gen_steps[t].push_back(first);
    }
    std::sort(gen_steps[t].begin(), gen_steps[t].end());
  }
  auto count_alive = [&](std::uint32_t t, std::uint32_t tau) -> std::uint32_t {
    if (t == 0) return n;  // initial pebbles
    const auto& steps = gen_steps[t];
    return static_cast<std::uint32_t>(
        std::upper_bound(steps.begin(), steps.end(), tau) - steps.begin());
  };
  auto tau_for = [&](std::uint32_t t) -> std::uint32_t {
    // min tau with e_{t-1}(tau) >= alpha n; t == 1 -> tau = 0 (initial).
    if (t == 1) return 0;
    const auto& steps = gen_steps[t - 1];
    const auto need = static_cast<std::size_t>(threshold);
    if (steps.size() < need || need == 0) return std::numeric_limits<std::uint32_t>::max();
    return steps[need - 1];
  };

  std::uint32_t prev_tau = 0;
  bool have_prev = false;
  report.min_gap = std::numeric_limits<std::uint32_t>::max();
  report.all_ok = true;
  for (std::uint32_t t = 1; t <= T; ++t) {
    const std::uint32_t tau = tau_for(t);
    if (tau > T_prime) continue;  // frontier never reached alpha n
    ExpansionStep step;
    step.t = t;
    step.tau = tau;
    step.frontier = count_alive(t, tau);
    step.bound = threshold / beta;
    step.ok = static_cast<double>(step.frontier) <= step.bound;
    report.all_ok = report.all_ok && step.ok;
    if (have_prev && tau >= prev_tau) {
      report.min_gap = std::min(report.min_gap, tau - prev_tau);
    }
    prev_tau = tau;
    have_prev = true;
    report.steps.push_back(step);
  }
  if (report.min_gap == std::numeric_limits<std::uint32_t>::max()) report.min_gap = 0;
  return report;
}

}  // namespace upn
