#include "src/lowerbound/spreading.hpp"

#include <algorithm>
#include <cmath>

#include "src/lowerbound/dependency_graph.hpp"
#include "src/util/contracts.hpp"

namespace upn {

SpreadingProfile measure_spreading(const Graph& graph, std::uint32_t max_t,
                                   std::uint32_t samples, Rng& rng) {
  UPN_REQUIRE(max_t >= 1);
  SpreadingProfile profile;
  profile.max_ball.assign(max_t + 1, 0);
  const std::uint32_t n = graph.num_nodes();
  for (std::uint32_t s = 0; s < samples && n > 0; ++s) {
    const auto center = static_cast<NodeId>(rng.below(n));
    const auto balls = spreading_profile(graph, center, max_t);
    for (std::uint32_t t = 0; t <= max_t; ++t) {
      profile.max_ball[t] = std::max(profile.max_ball[t], balls[t]);
    }
  }
  // Fit growth over the unsaturated mid-range [t_lo, t_hi]: skip t < 2 and
  // everything at or past saturation (ball == n).
  std::uint32_t t_hi = max_t;
  while (t_hi > 2 && profile.max_ball[t_hi] >= n) --t_hi;
  // High-degree graphs saturate almost immediately; widen the window so the
  // fit still sees the initial growth.
  const std::uint32_t t_lo = (t_hi > 3) ? 2 : 1;
  if (t_hi <= t_lo && t_hi < max_t) ++t_hi;
  if (t_hi > t_lo) {
    // Least squares of log2 S(t) against log2 t (polynomial exponent) and
    // against t (exponential rate).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    double tx = 0, txx = 0, txy = 0;
    std::uint32_t count = 0;
    for (std::uint32_t t = t_lo; t <= t_hi; ++t) {
      const double y = std::log2(static_cast<double>(profile.max_ball[t]));
      const double x = std::log2(static_cast<double>(t));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      tx += t;
      txx += static_cast<double>(t) * t;
      txy += t * y;
      ++count;
    }
    const double c = count;
    const double denom_poly = c * sxx - sx * sx;
    const double denom_exp = c * txx - tx * tx;
    if (denom_poly > 0) profile.poly_exponent = (c * sxy - sx * sy) / denom_poly;
    if (denom_exp > 0) profile.exp_rate = (c * txy - tx * sy) / denom_exp;
  }
  UPN_ENSURE(profile.max_ball.size() == max_t + 1);
  return profile;
}

bool has_polynomial_spreading(const SpreadingProfile& profile, double bound_coeff,
                              double bound_exp) {
  UPN_REQUIRE(bound_coeff > 0.0 && bound_exp >= 0.0);
  const std::uint32_t n = profile.max_ball.empty() ? 0 : profile.max_ball.back();
  for (std::uint32_t t = 1; t < profile.max_ball.size(); ++t) {
    if (profile.max_ball[t] >= n && n > 0) break;  // saturated tail
    const double bound = bound_coeff * std::pow(static_cast<double>(t), bound_exp);
    if (static_cast<double>(profile.max_ball[t]) > bound) return false;
  }
  return true;
}

}  // namespace upn
