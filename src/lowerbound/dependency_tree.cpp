#include "src/lowerbound/dependency_tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

/// Inclusive rectangle in canonical (translated) block coordinates.
struct Rect {
  std::uint32_t x0, x1, y0, y1;
  [[nodiscard]] std::uint32_t width() const noexcept { return x1 - x0 + 1; }
  [[nodiscard]] std::uint32_t height() const noexcept { return y1 - y0 + 1; }
  [[nodiscard]] bool single() const noexcept { return x0 == x1 && y0 == y1; }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> center() const noexcept {
    return {(x0 + x1) / 2, (y0 + y1) / 2};
  }
};

struct Builder {
  const MultitorusLayout* layout;
  std::uint32_t block_x0, block_y0;  ///< top-left of the block in the grid
  std::uint32_t shift_x, shift_y;    ///< translation so the root is centered
  std::vector<TreeNode> nodes;
  std::vector<std::uint32_t> leaf_candidates;

  /// Canonical (x, y) -> global node id, applying the torus translation.
  [[nodiscard]] NodeId to_global(std::uint32_t x, std::uint32_t y) const {
    const std::uint32_t side = layout->block_side;
    const std::uint32_t gx = block_x0 + (x + shift_x) % side;
    const std::uint32_t gy = block_y0 + (y + shift_y) % side;
    return layout->grid().id(gx, gy);
  }

  std::uint32_t add_node(std::uint32_t x, std::uint32_t y, std::uint32_t time,
                         std::int32_t parent) {
    nodes.push_back(TreeNode{to_global(x, y), time, parent});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }

  /// Monotone x-then-y path from node `from` (at canonical (fx, fy)) to
  /// (tx, ty); returns the index of the node at the target (== from if the
  /// path is empty).
  std::uint32_t add_path(std::uint32_t from, std::uint32_t fx, std::uint32_t fy,
                         std::uint32_t tx, std::uint32_t ty) {
    std::uint32_t at = from;
    std::uint32_t x = fx, y = fy;
    std::uint32_t time = nodes[from].time;
    while (x != tx) {
      x = x < tx ? x + 1 : x - 1;
      at = add_node(x, y, ++time, static_cast<std::int32_t>(at));
    }
    while (y != ty) {
      y = y < ty ? y + 1 : y - 1;
      at = add_node(x, y, ++time, static_cast<std::int32_t>(at));
    }
    return at;
  }

  /// Covers `rect`; `entry` (a node index at canonical (ex, ey) inside rect)
  /// already exists.
  void cover(const Rect& rect, std::uint32_t entry, std::uint32_t ex, std::uint32_t ey) {
    if (rect.single()) {
      leaf_candidates.push_back(entry);
      return;
    }
    // Split along the longer side; near half contains the entry point.
    Rect near = rect, far = rect;
    if (rect.width() >= rect.height()) {
      const std::uint32_t xm = (rect.x0 + rect.x1) / 2;
      if (ex <= xm) {
        near.x1 = xm;
        far.x0 = xm + 1;
      } else {
        near.x0 = xm + 1;
        far.x1 = xm;
      }
    } else {
      const std::uint32_t ym = (rect.y0 + rect.y1) / 2;
      if (ey <= ym) {
        near.y1 = ym;
        far.y0 = ym + 1;
      } else {
        near.y0 = ym + 1;
        far.y1 = ym;
      }
    }
    const auto [fcx, fcy] = far.center();
    const auto [ncx, ncy] = near.center();
    // Child 1: courier path to the far half's center.
    const std::uint32_t far_entry = add_path(entry, ex, ey, fcx, fcy);
    // Child 2: a self-edge step, then a path to the near half's center.
    const std::uint32_t self_node =
        add_node(ex, ey, nodes[entry].time + 1, static_cast<std::int32_t>(entry));
    const std::uint32_t near_entry = add_path(self_node, ex, ey, ncx, ncy);
    cover(far, far_entry, fcx, fcy);
    cover(near, near_entry, ncx, ncy);
  }
};

}  // namespace

DependencyTree build_block_dependency_tree(const MultitorusLayout& layout, std::uint32_t block,
                                           NodeId root) {
  UPN_OBS_SPAN("lowerbound.deptree.build");
  UPN_REQUIRE(layout.block_side > 0);
  if (block >= layout.num_blocks()) {
    throw std::out_of_range{"build_block_dependency_tree: block out of range"};
  }
  if (layout.block_of(root) != block) {
    throw std::invalid_argument{"build_block_dependency_tree: root not in block"};
  }
  const std::uint32_t side = layout.block_side;

  Builder builder;
  builder.layout = &layout;
  builder.block_x0 = (block % layout.blocks_per_row()) * side;
  builder.block_y0 = (block / layout.blocks_per_row()) * side;

  // Translate so the root lands at the canonical rectangle center.
  const Rect full{0, side - 1, 0, side - 1};
  const auto [cx, cy] = full.center();
  const auto [rx, ry] = layout.local_coords(root);
  builder.shift_x = (rx + side - cx % side) % side;
  builder.shift_y = (ry + side - cy % side) % side;

  const std::uint32_t root_index = builder.add_node(cx, cy, 0, -1);
  if (builder.nodes[root_index].vertex != root) {
    throw std::logic_error{"build_block_dependency_tree: translation failed to center root"};
  }
  builder.cover(full, root_index, cx, cy);

  // Pad every leaf candidate with self-edges to the maximum completion time.
  std::uint32_t depth = 0;
  for (const std::uint32_t c : builder.leaf_candidates) {
    depth = std::max(depth, builder.nodes[c].time);
  }
  DependencyTree tree;
  tree.depth = depth;
  for (const std::uint32_t c : builder.leaf_candidates) {
    std::uint32_t at = c;
    const NodeId vertex = builder.nodes[c].vertex;
    for (std::uint32_t t = builder.nodes[c].time; t < depth; ++t) {
      builder.nodes.push_back(TreeNode{vertex, t + 1, static_cast<std::int32_t>(at)});
      at = static_cast<std::uint32_t>(builder.nodes.size() - 1);
    }
    tree.leaves.push_back(at);
  }
  tree.nodes = std::move(builder.nodes);
  // Growth metrics for the Gamma-tree machinery: how large and deep the
  // courier trees get as block sides scale.
  UPN_OBS_COUNT("lowerbound.deptree.trees_built", 1);
  UPN_OBS_COUNT("lowerbound.deptree.nodes", tree.nodes.size());
  UPN_OBS_HIST("lowerbound.deptree.tree_size", tree.nodes.size());
  UPN_OBS_HIST("lowerbound.deptree.depth", tree.depth);
  UPN_OBS_GAUGE_MAX("lowerbound.deptree.max_depth", tree.depth);
  return tree;
}

bool validate_dependency_tree(const DependencyTree& tree, const Graph& graph,
                              const std::vector<NodeId>& block_nodes) {
  UPN_REQUIRE(graph.num_nodes() > 0);
  if (tree.nodes.empty()) return false;
  if (tree.nodes.front().parent != -1 || tree.nodes.front().time != 0) return false;

  std::vector<std::uint32_t> out_degree(tree.nodes.size(), 0);
  for (std::uint32_t i = 1; i < tree.nodes.size(); ++i) {
    const TreeNode& node = tree.nodes[i];
    if (node.parent < 0 || static_cast<std::uint32_t>(node.parent) >= tree.nodes.size()) {
      return false;
    }
    const TreeNode& parent = tree.nodes[static_cast<std::uint32_t>(node.parent)];
    if (node.time != parent.time + 1) return false;  // not a Gamma-edge in time
    if (node.vertex != parent.vertex && !graph.has_edge(node.vertex, parent.vertex)) {
      return false;  // not a Gamma-edge in space
    }
    if (++out_degree[static_cast<std::uint32_t>(node.parent)] > 2) return false;  // not binary
  }
  // Leaves: exactly the block nodes, each once, all at time `depth`.
  std::vector<NodeId> leaf_vertices;
  leaf_vertices.reserve(tree.leaves.size());
  for (const std::uint32_t leaf : tree.leaves) {
    if (leaf >= tree.nodes.size() || tree.nodes[leaf].time != tree.depth) return false;
    if (out_degree[leaf] != 0) return false;
    leaf_vertices.push_back(tree.nodes[leaf].vertex);
  }
  std::vector<NodeId> expected = block_nodes;
  std::sort(leaf_vertices.begin(), leaf_vertices.end());
  std::sort(expected.begin(), expected.end());
  return leaf_vertices == expected;
}

std::string dependency_tree_to_dot(const DependencyTree& tree) {
  UPN_REQUIRE(!tree.nodes.empty());
  std::ostringstream out;
  out << "digraph dependency_tree {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (std::uint32_t i = 0; i < tree.nodes.size(); ++i) {
    const TreeNode& node = tree.nodes[i];
    out << "  n" << i << " [label=\"P" << node.vertex << "\\nt+" << node.time << "\"];\n";
    if (node.parent >= 0) {
      out << "  n" << node.parent << " -> n" << i << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace upn
