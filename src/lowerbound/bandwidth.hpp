// Bandwidth-based slowdown lower bounds ([10], cited in Section 1:
// "communication bandwidth of guest and host ... as criteria to exceed the
// load-induced bound").
//
// The flow argument: one guest step forces every cross-host guest edge's
// configuration to travel the host distance between its endpoint images.
// The host moves at most one packet per directed link per step (multiport;
// single-port moves at most m/2 packets per step total), so
//
//   s  >=  total_path_length / host_link_capacity.
//
// This is the quantitative reason route(h) = Omega(h log m) on constant-
// degree hosts, and the cheap certificate behind THM2.1's tightness.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

struct BandwidthBound {
  std::uint64_t total_demand = 0;   ///< sum of host distances over guest edges (x2 dirs)
  std::uint64_t link_capacity = 0;  ///< directed host links (multiport per-step cap)
  double multiport_bound = 0.0;     ///< s >= demand / links
  double single_port_bound = 0.0;   ///< s >= demand / (m/2): matchings move <= m/2
  double diameter_bound = 0.0;      ///< s >= max host distance of any guest edge...
};

/// Computes the per-guest-step flow lower bound for simulating `guest` on
/// `host` under `embedding`.
[[nodiscard]] BandwidthBound bandwidth_lower_bound(const Graph& guest, const Graph& host,
                                                   const std::vector<NodeId>& embedding);

}  // namespace upn
