// The counting framework of Section 3.2 in log2 domain.
//
// The proof of Theorem 3.1 is a pure counting argument:
//   |U[G_0]|  >= n^{(c-12)n/2} 2^{-delta n}                  ([13])
//   Y         <= |A| (q k)^n,  |A| <= 2^{r n k}               (Prop 3.6a, L3.13)
//   X         <= n^{(c-12)n/2} / m^{gamma (c-12) n / 4}       (Prop 3.6b)
//   |G(k)|    <= X * Y                                        (Lemma 3.5)
// and universality forces |G(k)| >= |U[G_0]|, which pins k = Omega(log m).
// Every quantity here is a log2 evaluator so the chain can be instantiated
// at concrete (n, m, c, k) and the minimal feasible k extracted numerically.
#pragma once

#include <cstdint>

namespace upn {

/// The constants the paper fixes in Section 3 (c = 16, G_0 degree 12) and
/// the ones Lemma 3.13 derives (q = 384, r = 3472 + 384 log2 d).
struct CountingConstants {
  std::uint32_t c = 16;        ///< guest degree (class U')
  std::uint32_t g0_degree = 12;
  std::uint32_t host_degree = 4;  ///< d: degree of the universal network M
  double q = 384.0;            ///< Lemma 3.13 (2)
  double delta = 2.0;          ///< |U[G_0]| >= n^{...} 2^{-delta n} ([13])
  double gamma = 0.05;         ///< Main Lemma (3): gamma = alpha (1 - 1/beta) / 2

  /// r from Lemma 3.13 (3): 3472 + 384 log2(host_degree).
  [[nodiscard]] double r() const noexcept;
};

/// log2 of the [13] lower bound on |U[G_0]|: n^{(c-12)n/2} 2^{-delta n}.
[[nodiscard]] double log2_guest_count_lower(double n, const CountingConstants& k);

/// log2 upper bound on |A| (Lemma 3.13 (3)): r n k.
[[nodiscard]] double log2_a_count(double n, double k, const CountingConstants& constants);

/// log2 upper bound on Y (Prop 3.6a): log2|A| + n log2(q k).
[[nodiscard]] double log2_fragment_count(double n, double k,
                                         const CountingConstants& constants);

/// log2 upper bound on X (Prop 3.6b):
/// (c-12)/2 * n * log2 n - gamma (c-12)/4 * n * log2 m.
[[nodiscard]] double log2_multiplicity(double n, double m, const CountingConstants& constants);

/// log2 upper bound on |G(k)| (Lemma 3.5): X * Y.
[[nodiscard]] double log2_simulable_count(double n, double m, double k,
                                          const CountingConstants& constants);

/// True iff inefficiency k is ruled out: |G(k)| < |U[G_0]|, i.e. some guest
/// has no k-inefficient simulation.
[[nodiscard]] bool inefficiency_infeasible(double n, double m, double k,
                                           const CountingConstants& constants);

/// The smallest k (within tolerance) NOT ruled out by the counting chain:
/// the Theorem 3.1 lower bound on the inefficiency at (n, m).
[[nodiscard]] double min_feasible_inefficiency(double n, double m,
                                               const CountingConstants& constants);

/// The closed-form asymptotic from the proof's last line:
/// k >= gamma (c-12) / (4 r') * log2 m with r' = r + (log2(q k) + delta)/k,
/// solved by fixed-point iteration.
[[nodiscard]] double closed_form_inefficiency(double m, const CountingConstants& constants);

/// Section 3's minimum computation length: the lower bound "even holds if
/// only computations of length ceil(2 sqrt(log m)) have to be simulated"
/// (shorter computations admit tree-replication hosts of size 2^{O(t)} n).
[[nodiscard]] std::uint32_t minimum_computation_length(double m);

}  // namespace upn
