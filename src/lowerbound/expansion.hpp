// Generating-pebble expansion dynamics (Definition 3.16, Proposition 3.17,
// Lemma 3.15).
//
// E_t(tau) is the set of guests whose pebble (P_i, t) exists after tau host
// steps; tau_t = min { tau : e_{t-1}(tau) >= alpha n } is when the (t-1)-
// frontier first reaches alpha n.  Proposition 3.17: at that moment
// e_t(tau_t) <= (alpha / beta) n, because t-pebbles need ALL guest-neighbor
// (t-1)-pebbles and the guest expands by beta on small sets -- so between
// tau_t and tau_{t+1} at least alpha (1 - 1/beta) n new generating t-pebbles
// must be produced.  This module measures all of it on real protocols.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pebble/metrics.hpp"

namespace upn {

struct ExpansionStep {
  std::uint32_t t = 0;          ///< guest time
  std::uint32_t tau = 0;        ///< tau_t (host step count)
  std::uint32_t frontier = 0;   ///< e_t(tau_t): next-level pebbles already alive
  double bound = 0;             ///< (alpha / beta) n, Prop. 3.17's cap
  bool ok = false;              ///< frontier <= bound
};

struct ExpansionReport {
  double alpha = 0;
  double beta = 0;
  std::vector<ExpansionStep> steps;   ///< one per guest time with valid tau
  std::uint32_t min_gap = 0;          ///< min tau_{t+1} - tau_t
  double pebbles_per_phase = 0;       ///< alpha (1 - 1/beta) n, the forced work
  bool all_ok = false;
};

/// Measures E_t(tau) dynamics of a protocol for an (alpha, beta)-expanding
/// guest.  The protocol must be complete (all final pebbles generated).
[[nodiscard]] ExpansionReport analyze_expansion(const ProtocolMetrics& metrics, double alpha,
                                                double beta);

}  // namespace upn
