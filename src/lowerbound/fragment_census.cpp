#include "src/lowerbound/fragment_census.hpp"

#include <cmath>
#include <unordered_set>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/util/contracts.hpp"
#include "src/pebble/metrics.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/math.hpp"

namespace upn {

std::uint64_t fragment_hash(const Fragment& fragment) {
  std::uint64_t h = mix64(0x4652414746524147ULL ^ fragment.t0);
  for (std::size_t i = 0; i < fragment.B.size(); ++i) {
    for (const std::uint32_t q : fragment.B[i]) {
      h = mix64(h ^ (static_cast<std::uint64_t>(i) << 32 | q));
    }
    h = mix64(h ^ (0xb0b0b0b0ULL + fragment.b[i]));
  }
  return h;
}

FragmentCensus run_fragment_census(const G0& g0, std::uint32_t butterfly_dimension,
                                   std::uint32_t num_guests, std::uint32_t T, Rng& rng,
                                   const CountingConstants& constants) {
  UPN_REQUIRE(T >= 1, "run_fragment_census: need at least one guest step to cut at T/2");
  const Graph host = make_butterfly(butterfly_dimension);
  const std::uint32_t n = g0.num_nodes();
  const std::uint32_t m = host.num_nodes();
  UPN_REQUIRE(n > 0 && m > 0, "run_fragment_census: empty guest or host");

  FragmentCensus census;
  census.guests = num_guests;
  std::unordered_set<std::uint64_t> seen;
  double k_sum = 0;
  const double small_d_threshold = static_cast<double>(n) / std::sqrt(m);

  for (std::uint32_t g = 0; g < num_guests; ++g) {
    const Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);
    UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
    UniversalSimOptions options;
    options.emit_protocol = true;
    options.seed = rng();
    const UniversalSimResult result = sim.run(T, options);
    if (!result.configs_match) {
      throw std::logic_error{"run_fragment_census: simulation diverged"};
    }
    const ProtocolMetrics metrics{*result.protocol};
    const Fragment fragment = extract_fragment(metrics, T / 2);

    FragmentCensusRow row;
    row.fragment_hash = fragment_hash(fragment);
    row.log2_multiplicity = log2_multiplicity_bound(fragment, kGuestDegree);
    row.sum_b = fragment.total_b_size();
    row.small_d = count_small_d(fragment, small_d_threshold);
    census.rows.push_back(row);
    census.worst_log2_multiplicity =
        std::max(census.worst_log2_multiplicity, row.log2_multiplicity);
    seen.insert(row.fragment_hash);
    k_sum += result.inefficiency;
  }
  UPN_ENSURE(census.rows.size() == num_guests, "one census row per sampled guest");
  census.distinct_fragments = static_cast<std::uint32_t>(seen.size());
  UPN_ENSURE(census.distinct_fragments <= num_guests,
             "cannot see more distinct fragments than guests");
  census.mean_inefficiency = num_guests == 0 ? 0.0 : k_sum / num_guests;
  census.log2_a_bound = log2_a_count(n, census.mean_inefficiency, constants);
  census.log2_guest_space = log2_guest_count_lower(n, constants);
  return census;
}

}  // namespace upn
