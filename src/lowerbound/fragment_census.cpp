#include "src/lowerbound/fragment_census.hpp"

#include <cmath>
#include <unordered_set>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"
#include "src/pebble/metrics.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {

std::uint64_t fragment_hash(const Fragment& fragment) {
  std::uint64_t h = mix64(0x4652414746524147ULL ^ fragment.t0);
  for (std::size_t i = 0; i < fragment.B.size(); ++i) {
    for (const std::uint32_t q : fragment.B[i]) {
      h = mix64(h ^ (static_cast<std::uint64_t>(i) << 32 | q));
    }
    h = mix64(h ^ (0xb0b0b0b0ULL + fragment.b[i]));
  }
  return h;
}

namespace {

struct GuestSample {
  FragmentCensusRow row;
  double inefficiency = 0;
};

/// Simulates one random guest drawn from `rng` and extracts its census row.
GuestSample census_one_guest(const G0& g0, const Graph& host, std::uint32_t T,
                             double small_d_threshold, Rng& rng) {
  UPN_OBS_SPAN("lowerbound.census.guest");
  const std::uint32_t n = g0.num_nodes();
  const std::uint32_t m = host.num_nodes();
  const Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);
  UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  options.seed = rng();
  const UniversalSimResult result = sim.run(T, options);
  if (!result.configs_match) {
    throw std::logic_error{"run_fragment_census: simulation diverged"};
  }
  const ProtocolMetrics metrics{*result.protocol};
  const Fragment fragment = extract_fragment(metrics, T / 2);

  GuestSample sample;
  sample.row.fragment_hash = fragment_hash(fragment);
  sample.row.log2_multiplicity = log2_multiplicity_bound(fragment, kGuestDegree);
  sample.row.sum_b = fragment.total_b_size();
  sample.row.small_d = count_small_d(fragment, small_d_threshold);
  sample.inefficiency = result.inefficiency;
  UPN_OBS_COUNT("lowerbound.census.guests_sampled", 1);
  UPN_OBS_COUNT("lowerbound.census.sum_b", sample.row.sum_b);
  UPN_OBS_HIST("lowerbound.census.fragment_b_size", sample.row.sum_b);
  return sample;
}

/// Ordered reduction of per-guest samples into the census aggregate; runs
/// serially in guest order on both the serial and the parallel path.
FragmentCensus finalize_census(std::vector<GuestSample> samples, std::uint32_t n,
                               const CountingConstants& constants) {
  UPN_OBS_SPAN("lowerbound.census.finalize");
  FragmentCensus census;
  census.guests = static_cast<std::uint32_t>(samples.size());
  std::unordered_set<std::uint64_t> seen;
  double k_sum = 0;
  for (const GuestSample& sample : samples) {
    census.rows.push_back(sample.row);
    census.worst_log2_multiplicity =
        std::max(census.worst_log2_multiplicity, sample.row.log2_multiplicity);
    seen.insert(sample.row.fragment_hash);
    k_sum += sample.inefficiency;
  }
  UPN_ENSURE(census.rows.size() == census.guests, "one census row per sampled guest");
  census.distinct_fragments = static_cast<std::uint32_t>(seen.size());
  UPN_ENSURE(census.distinct_fragments <= census.guests,
             "cannot see more distinct fragments than guests");
  census.mean_inefficiency = census.guests == 0 ? 0.0 : k_sum / census.guests;
  census.log2_a_bound = log2_a_count(n, census.mean_inefficiency, constants);
  census.log2_guest_space = log2_guest_count_lower(n, constants);
  UPN_OBS_GAUGE_MAX("lowerbound.census.distinct_fragments", census.distinct_fragments);
  return census;
}

}  // namespace

FragmentCensus run_fragment_census(const G0& g0, std::uint32_t butterfly_dimension,
                                   std::uint32_t num_guests, std::uint32_t T, Rng& rng,
                                   const CountingConstants& constants) {
  UPN_REQUIRE(T >= 1, "run_fragment_census: need at least one guest step to cut at T/2");
  const Graph host = make_butterfly(butterfly_dimension);
  const std::uint32_t n = g0.num_nodes();
  UPN_REQUIRE(n > 0 && host.num_nodes() > 0, "run_fragment_census: empty guest or host");
  const double small_d_threshold = static_cast<double>(n) / std::sqrt(host.num_nodes());

  std::vector<GuestSample> samples;
  samples.reserve(num_guests);
  for (std::uint32_t g = 0; g < num_guests; ++g) {
    samples.push_back(census_one_guest(g0, host, T, small_d_threshold, rng));
  }
  return finalize_census(std::move(samples), n, constants);
}

FragmentCensus run_fragment_census_par(const G0& g0, std::uint32_t butterfly_dimension,
                                       std::uint32_t num_guests, std::uint32_t T,
                                       std::uint64_t seed, ThreadPool& pool,
                                       const CountingConstants& constants) {
  UPN_REQUIRE(T >= 1, "run_fragment_census: need at least one guest step to cut at T/2");
  const Graph host = make_butterfly(butterfly_dimension);
  const std::uint32_t n = g0.num_nodes();
  UPN_REQUIRE(n > 0 && host.num_nodes() > 0, "run_fragment_census: empty guest or host");
  const double small_d_threshold = static_cast<double>(n) / std::sqrt(host.num_nodes());

  std::vector<GuestSample> samples =
      pool.parallel_map<GuestSample>(num_guests, [&](std::size_t g) {
        Rng rng = Rng::stream(seed, g);
        return census_one_guest(g0, host, T, small_d_threshold, rng);
      });
  return finalize_census(std::move(samples), n, constants);
}

}  // namespace upn
