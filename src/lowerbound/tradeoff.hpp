// The size/slowdown trade-off of Theorem 3.1, as concrete tables.
//
//   m * s = Omega(n log m)
//
// Interpretations (Section 1, "New Results"):
//   * m >= n: constant slowdown needs m = Omega(n log n);
//   * m <= n: slowdown s = Omega((n/m) log m), a log m factor above the
//     load-induced bound n/m -- so for small hosts, dynamic simulation
//     cannot beat the static butterfly embedding of Theorem 2.1.
// The upper-bound side ([14], quoted in Section 1): for every l >= 1 there
// is a universal network of size n*l with slowdown s, s * log l = O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "src/lowerbound/counting.hpp"

namespace upn {

struct TradeoffRow {
  double n = 0;
  double m = 0;
  double k_counting = 0;    ///< minimal feasible inefficiency (full chain)
  double k_closed_form = 0; ///< closed-form fixed point
  double slowdown_bound = 0;///< s >= k n / m
  double load_bound = 0;    ///< s >= n / m (trivial)
  double ms_over_nlogm = 0; ///< (m * slowdown_bound) / (n log2 m): ~const
};

/// Lower-bound table over hosts m for a fixed guest size n.
[[nodiscard]] std::vector<TradeoffRow> lower_bound_sweep(
    double n, const std::vector<double>& ms, const CountingConstants& constants = {});

/// Verdict on a proposed universal network (m, s) for guests of size n.
struct TradeoffVerdict {
  bool ruled_out_paper_constants = false;  ///< violates k >= k_counting
  bool ruled_out_normalized = false;       ///< violates m s >= n log2 m (constant 1)
  double required_slowdown = 0;            ///< minimal s allowed by the theorem
  double proposed_ms = 0;
  double bound_nlogm = 0;
};
[[nodiscard]] TradeoffVerdict check_network(double n, double m, double s,
                                            const CountingConstants& constants = {});

/// The [14] upper-bound trade-off: slowdown achievable with a host of size
/// n*l, i.e. s = O(log n / log l); returned with constant 1.
[[nodiscard]] double upper_bound_slowdown(double n, double ell);

/// Minimal host size for constant slowdown s0 by the same trade-off:
/// l = 2^{log n / s0}, m = n * l.
[[nodiscard]] double upper_bound_size_for_slowdown(double n, double s0);

}  // namespace upn
