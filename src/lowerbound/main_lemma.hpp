// The Main Lemma (Lemma 3.4), end to end on a real protocol.
//
// "There are constants q, r, 0 < gamma < 1, a set A with |A| <= 2^{rnk}
// such that every k-inefficient simulation protocol of a graph in U[G_0] is
// consistent with a fragment (B, B', D) with
//   (1) B in A,
//   (2) sum_i |B_i| <= q n k,
//   (3) |D_i| <= n / sqrt(m) for at least gamma n many i."
//
// This module runs the whole selection on an emitted protocol: Lemma 3.12
// picks the critical times Z_S (property 1's footprint + property 2's
// bound), and for each t0 in Z_S a fragment is extracted (greedily choosing
// the lightest generators) and property (3) is counted against the
// gamma = alpha (1 - 1/beta) / 2 promised by the planted expander.  At toy
// scales property (3) often fails (n / sqrt(m) is not small yet); the
// report states measured gamma so benches can chart how the asymptotics
// take over.
#pragma once

#include <cstdint>
#include <vector>

#include "src/lowerbound/lemma_verify.hpp"
#include "src/pebble/fragment.hpp"

namespace upn {

struct MainLemmaFragmentRow {
  std::uint32_t t0 = 0;
  std::uint64_t sum_b = 0;       ///< property (2) quantity
  double bound_sum_b = 0;        ///< q n k with the measured tree constant
  bool property2 = false;
  std::uint32_t small_d = 0;     ///< property (3) count
  double required_small_d = 0;   ///< gamma n
  bool property3 = false;
  double measured_gamma = 0;     ///< small_d / n
};

struct MainLemmaReport {
  Lemma312Report averaging;      ///< Z_S and per-t0 root choices
  double gamma = 0;              ///< alpha (1 - 1/beta) / 2 from the expander
  double small_d_threshold = 0;  ///< n / sqrt(m)
  std::vector<MainLemmaFragmentRow> fragments;  ///< one per t0 in Z_S
  bool property1 = false;        ///< |Z_S| large (the A-footprint condition)
  bool property2_all = false;
  bool property3_all = false;
};

/// Runs the full Main-Lemma selection on `metrics` for a guest containing
/// `g0`, simulated on a host of `m` processors.
[[nodiscard]] MainLemmaReport verify_main_lemma(const ProtocolMetrics& metrics, const G0& g0);

}  // namespace upn
