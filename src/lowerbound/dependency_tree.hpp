// Dependency trees in Gamma_{G_0} (Lemma 3.10, Figure 1).
//
// For each (4a^2)-torus block T_j of G_0 and any root vertex P_i in T_j,
// Lemma 3.10 promises a binary tree in the dependency graph rooted at
// (P_i, t - a) whose leaves are exactly T_j x {t}, of size at most 48 a^2.
// The construction is the paper's recursive torus partition: translate the
// block torus so the root is the center (tori are vertex-transitive), split
// the region in half, send one courier along a monotone path to the far
// half's center while a self-chain continues into the near half, recurse,
// and finally pad every branch with self-edges so all leaves sit at one
// common time.
//
// Every structural promise is checked by validate_dependency_tree: binary
// branching, Gamma-edges only, leaves cover the block exactly once at a
// uniform time.  The measured depth is ~2a rather than the paper's stated a
// (an L x L torus has diameter L, not L/2); benches report the measured
// constants, and the downstream lemmas use the measured depth.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"
#include "src/topology/multitorus.hpp"

namespace upn {

struct TreeNode {
  NodeId vertex = 0;       ///< guest node id
  std::uint32_t time = 0;  ///< time offset from the root (root = 0)
  std::int32_t parent = -1;
};

struct DependencyTree {
  std::vector<TreeNode> nodes;        ///< nodes[0] is the root
  std::vector<std::uint32_t> leaves;  ///< indices of leaf nodes
  std::uint32_t depth = 0;            ///< uniform leaf time

  [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }
  [[nodiscard]] NodeId root_vertex() const noexcept { return nodes.front().vertex; }
};

/// Builds the dependency tree of block `block` of the multitorus layout,
/// rooted at `root` (which must lie in that block).
[[nodiscard]] DependencyTree build_block_dependency_tree(const MultitorusLayout& layout,
                                                         std::uint32_t block, NodeId root);

/// Checks the tree against the Lemma 3.10 promises relative to `graph`
/// (the multitorus, or any supergraph of it): out-degree <= 2, every
/// parent-child step is a Gamma-edge (same vertex or a graph edge), leaves
/// are exactly `block_nodes` (each once) at a common time.
[[nodiscard]] bool validate_dependency_tree(const DependencyTree& tree, const Graph& graph,
                                            const std::vector<NodeId>& block_nodes);

/// Renders the tree in Graphviz DOT (the Figure 1 regeneration).
[[nodiscard]] std::string dependency_tree_to_dot(const DependencyTree& tree);

}  // namespace upn
