#include "src/lowerbound/dependency_graph.hpp"

#include <algorithm>

#include "src/topology/properties.hpp"

namespace upn {

std::vector<NodeId> dependency_predecessors(const Graph& guest, NodeId node) {
  std::vector<NodeId> preds;
  preds.reserve(guest.degree(node) + 1);
  preds.push_back(node);
  for (const NodeId u : guest.neighbors(node)) preds.push_back(u);
  std::sort(preds.begin(), preds.end());
  return preds;
}

bool dependency_reaches(const Graph& guest, NodeId from, NodeId to, std::uint32_t steps) {
  const auto dist = bfs_distances(guest, from);
  return dist[to] != kUnreachable && dist[to] <= steps;
}

std::vector<NodeId> dependency_ball(const Graph& guest, NodeId center, std::uint32_t steps) {
  const auto dist = bfs_distances(guest, center);
  std::vector<NodeId> ball;
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= steps) ball.push_back(v);
  }
  return ball;
}

std::vector<std::uint32_t> spreading_profile(const Graph& guest, NodeId center,
                                             std::uint32_t max_steps) {
  const auto dist = bfs_distances(guest, center);
  std::vector<std::uint32_t> profile(max_steps + 1, 0);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) continue;
    for (std::uint32_t i = dist[v]; i <= max_steps; ++i) ++profile[i];
  }
  return profile;
}

}  // namespace upn
