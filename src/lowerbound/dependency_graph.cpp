#include "src/lowerbound/dependency_graph.hpp"

#include <algorithm>

#include "src/topology/properties.hpp"
#include "src/util/contracts.hpp"

namespace upn {

std::vector<NodeId> dependency_predecessors(const Graph& guest, NodeId node) {
  UPN_REQUIRE(node < guest.num_nodes(), "dependency_predecessors: node out of range");
  std::vector<NodeId> preds;
  preds.reserve(guest.degree(node) + 1);
  preds.push_back(node);
  for (const NodeId u : guest.neighbors(node)) preds.push_back(u);
  std::sort(preds.begin(), preds.end());
  UPN_ENSURE(preds.size() == guest.degree(node) + 1u,
             "(P, t-1) plus one predecessor per guest neighbor");
  return preds;
}

bool dependency_reaches(const Graph& guest, NodeId from, NodeId to, std::uint32_t steps) {
  UPN_REQUIRE(from < guest.num_nodes() && to < guest.num_nodes(),
              "dependency_reaches: endpoints out of range");
  const auto dist = bfs_distances(guest, from);
  return dist[to] != kUnreachable && dist[to] <= steps;
}

std::vector<NodeId> dependency_ball(const Graph& guest, NodeId center, std::uint32_t steps) {
  UPN_REQUIRE(center < guest.num_nodes(), "dependency_ball: center out of range");
  const auto dist = bfs_distances(guest, center);
  std::vector<NodeId> ball;
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= steps) ball.push_back(v);
  }
  UPN_ENSURE(!ball.empty() && std::binary_search(ball.begin(), ball.end(), center),
             "a dependency ball always contains its center");
  return ball;
}

std::vector<std::uint32_t> spreading_profile(const Graph& guest, NodeId center,
                                             std::uint32_t max_steps) {
  UPN_REQUIRE(center < guest.num_nodes(), "spreading_profile: center out of range");
  const auto dist = bfs_distances(guest, center);
  std::vector<std::uint32_t> profile(max_steps + 1, 0);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) continue;
    for (std::uint32_t i = dist[v]; i <= max_steps; ++i) ++profile[i];
  }
  UPN_ENSURE(std::is_sorted(profile.begin(), profile.end()),
             "dependency balls are nested, so the spreading profile is monotone");
  UPN_ENSURE(profile[0] >= 1, "(P, t) depends at least on itself");
  return profile;
}

}  // namespace upn
