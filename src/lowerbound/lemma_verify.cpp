#include "src/lowerbound/lemma_verify.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace upn {

namespace {

/// Weight of a dependency tree anchored so its leaves sit at guest time t0:
/// sum of q_{v, t0 - depth + tau} over all tree nodes (v, tau), Def. 3.11.
std::uint64_t tree_weight(const DependencyTree& tree, const ProtocolMetrics& metrics,
                          std::uint32_t t0) {
  const std::uint32_t base = t0 - tree.depth;
  std::uint64_t total = 0;
  for (const TreeNode& node : tree.nodes) {
    total += metrics.weight(node.vertex, base + node.time);
  }
  return total;
}

}  // namespace

Lemma312Report verify_lemma312(const ProtocolMetrics& metrics, const G0& g0) {
  const std::uint32_t n = metrics.num_guests();
  if (n != g0.num_nodes()) {
    throw std::invalid_argument{"verify_lemma312: protocol and G_0 sizes differ"};
  }
  const std::uint32_t T = metrics.guest_steps();
  const std::uint32_t h = g0.num_blocks();
  const std::uint32_t a = g0.a;
  const double k = metrics.inefficiency();

  Lemma312Report report;
  report.inefficiency = k;

  // Build one dependency tree per (block, candidate root).
  std::vector<std::vector<DependencyTree>> trees(h);
  std::vector<std::vector<NodeId>> block_nodes(h);
  std::size_t max_tree_size = 0;
  for (std::uint32_t j = 0; j < h; ++j) {
    block_nodes[j] = g0.block(j);
    trees[j].reserve(block_nodes[j].size());
    for (const NodeId root : block_nodes[j]) {
      trees[j].push_back(build_block_dependency_tree(g0.layout, j, root));
      max_tree_size = std::max(max_tree_size, trees[j].back().size());
    }
  }
  const std::uint32_t depth = trees[0][0].depth;
  report.tree_depth = depth;
  if (T <= depth) {
    throw std::invalid_argument{"verify_lemma312: protocol too short for the tree depth"};
  }

  // ---- The averaging step, with exact Markov thresholds. ----
  // A(t0)  = sum over all candidate trees of their weight at t0;
  // Aq(t0) = sum_i q_{i, t0 - depth}.
  // Z' keeps t0 with A <= 4 avg(A); Z'' with Aq <= 4 avg(Aq).  By Markov
  // each excludes < 1/4 of the span, so |Z| >= span/2 -- a theorem for ANY
  // protocol, mirroring the paper's Z' / Z'' construction.
  const std::uint32_t span = T - depth;
  std::vector<double> tree_totals(span), q_totals(span);
  double sum_tree_totals = 0, sum_q_totals = 0;
  for (std::uint32_t idx = 0; idx < span; ++idx) {
    const std::uint32_t t0 = depth + 1 + idx;
    double all_trees = 0;
    for (std::uint32_t j = 0; j < h; ++j) {
      for (const auto& tree : trees[j]) {
        all_trees += static_cast<double>(tree_weight(tree, metrics, t0));
      }
    }
    double all_q = 0;
    for (NodeId i = 0; i < n; ++i) all_q += metrics.weight(i, t0 - depth);
    tree_totals[idx] = all_trees;
    q_totals[idx] = all_q;
    sum_tree_totals += all_trees;
    sum_q_totals += all_q;
  }
  const double z1_bound = 4.0 * sum_tree_totals / span;
  const double z2_bound = 4.0 * sum_q_totals / span;
  for (std::uint32_t idx = 0; idx < span; ++idx) {
    if (tree_totals[idx] <= z1_bound && q_totals[idx] <= z2_bound) {
      report.z_set.push_back(depth + 1 + idx);
    }
  }
  report.z_large_enough = 4 * report.z_set.size() >= span;

  // ---- Per t0 in Z: choose roots r_j and check (1) and (2). ----
  // r_j is picked from the intersection of the 3a^2 lightest candidates by
  // tree weight (V'_j) and by root weight (V''_j); the intersection has
  // >= 2a^2 members since each set drops only a^2 of the 4a^2 candidates.
  const double a2 = static_cast<double>(a) * a;
  for (const std::uint32_t t0 : report.z_set) {
    Lemma312Choice choice;
    choice.t0 = t0;
    for (std::uint32_t j = 0; j < h; ++j) {
      const std::size_t candidates = block_nodes[j].size();
      std::vector<std::uint64_t> w(candidates), q(candidates);
      for (std::size_t c = 0; c < candidates; ++c) {
        w[c] = tree_weight(trees[j][c], metrics, t0);
        q[c] = metrics.weight(block_nodes[j][c], t0 - depth);
      }
      const std::size_t keep = candidates - candidates / 4;  // 3a^2 of 4a^2
      std::vector<std::size_t> by_w(candidates), by_q(candidates);
      std::iota(by_w.begin(), by_w.end(), 0);
      by_q = by_w;
      std::sort(by_w.begin(), by_w.end(),
                [&](std::size_t x, std::size_t y) { return w[x] < w[y]; });
      std::sort(by_q.begin(), by_q.end(),
                [&](std::size_t x, std::size_t y) { return q[x] < q[y]; });
      std::vector<char> in_v1(candidates, 0);
      for (std::size_t rank = 0; rank < keep; ++rank) in_v1[by_w[rank]] = 1;
      std::size_t chosen = candidates;  // sentinel
      for (std::size_t rank = 0; rank < keep; ++rank) {
        if (in_v1[by_q[rank]]) {
          chosen = by_q[rank];
          break;
        }
      }
      if (chosen == candidates) {
        throw std::logic_error{"verify_lemma312: V' and V'' do not intersect"};
      }
      choice.roots.push_back(block_nodes[j][chosen]);
      choice.sum_root_weights += q[chosen];
      choice.sum_tree_weights += w[chosen];
    }
    // Guaranteed bounds: being in the lightest 3a^2 means at least a^2
    // candidates weigh at least as much, so each selected value is at most
    // the block total / a^2; summing over blocks gives Aq(t0)/a^2 and
    // A(t0)/a^2, which Z membership caps at the z-bounds / a^2.
    choice.bound_roots = z2_bound / a2;
    choice.bound_trees = z1_bound / a2;
    // Paper-constant forms, for reporting: 8 (n/a^2) k and 8 B n k / a^2.
    choice.paper_bound_roots = 8.0 * (static_cast<double>(n) / a2) * k;
    choice.paper_bound_trees =
        8.0 * static_cast<double>(max_tree_size) * static_cast<double>(n) * k / a2;
    choice.roots_ok = static_cast<double>(choice.sum_root_weights) <= choice.bound_roots;
    choice.trees_ok = static_cast<double>(choice.sum_tree_weights) <= choice.bound_trees;
    report.choices.push_back(std::move(choice));

    // Lemma 3.13 (2): sum_i q_{i, t0} (covered by the trees' leaves).
    double sum_q = 0;
    for (NodeId i = 0; i < n; ++i) sum_q += metrics.weight(i, t0);
    report.max_sum_q = std::max(report.max_sum_q, sum_q);
  }
  report.bound_sum_q =
      8.0 * static_cast<double>(max_tree_size) * static_cast<double>(n) * k / a2;
  report.sum_q_ok = report.max_sum_q <= report.bound_sum_q;
  return report;
}

}  // namespace upn
