// The counting argument, observed: a census of fragments across guests.
//
// Section 3.2's engine is: (i) every k-inefficient simulation is consistent
// with a fragment from a SMALL set (|A| <= 2^{rnk} choices of B, (qk)^n of
// B'), and (ii) each fragment is consistent with FEW guests (multiplicity
// X, Lemma 3.3).  Therefore few guests are simulable: |G(k)| <= X * Y.
//
// This module runs the pipeline on many concrete guests G_1..G_K in U[G_0]:
// simulate each, extract the fragment at a critical time, canonically hash
// the (B, B') data, and tabulate (a) how many distinct fragments appear
// (an empirical footprint of A), and (b) the per-fragment Lemma 3.3
// multiplicity bound, against the counting-chain values at the same (n, m,
// k).  It is the proof's bookkeeping made executable at laptop scale.
#pragma once

#include <cstdint>
#include <vector>

#include "src/lowerbound/counting.hpp"
#include "src/pebble/fragment.hpp"
#include "src/topology/g0.hpp"
#include "src/util/par.hpp"
#include "src/util/rng.hpp"

namespace upn {

struct FragmentCensusRow {
  std::uint64_t fragment_hash = 0;  ///< canonical hash of (B, B')
  double log2_multiplicity = 0;     ///< Lemma 3.3 bound for this fragment
  std::uint64_t sum_b = 0;          ///< sum |B_i| (Main Lemma (2) quantity)
  std::uint32_t small_d = 0;        ///< #i with |D_i| <= n/sqrt(m)
};

struct FragmentCensus {
  std::uint32_t guests = 0;            ///< simulations run
  std::uint32_t distinct_fragments = 0;
  double mean_inefficiency = 0;        ///< measured k across simulations
  double worst_log2_multiplicity = 0;  ///< max over fragments
  double log2_a_bound = 0;             ///< 2^{rnk} from Lemma 3.13 at mean k
  double log2_guest_space = 0;         ///< |U[G_0]| lower bound
  std::vector<FragmentCensusRow> rows;
};

/// Simulates `num_guests` random members of U[G_0] on a butterfly host of
/// dimension `butterfly_dimension`, extracts one fragment each (at guest
/// time T/2) and tabulates the census.  T is the simulated length.
[[nodiscard]] FragmentCensus run_fragment_census(const G0& g0,
                                                 std::uint32_t butterfly_dimension,
                                                 std::uint32_t num_guests, std::uint32_t T,
                                                 Rng& rng,
                                                 const CountingConstants& constants = {});

/// The census with one pool task per sampled guest.  Guest g draws its
/// random regular graph, embedding, and simulation seed from its own
/// Rng::stream(seed, g); per-guest rows are collected by guest index and
/// the aggregate statistics (distinct count, mean k) are reduced serially
/// in that order, so the census is byte-identical for every pool size.
[[nodiscard]] FragmentCensus run_fragment_census_par(
    const G0& g0, std::uint32_t butterfly_dimension, std::uint32_t num_guests,
    std::uint32_t T, std::uint64_t seed, ThreadPool& pool,
    const CountingConstants& constants = {});

/// Canonical order-sensitive hash of a fragment's (B, B') content.
[[nodiscard]] std::uint64_t fragment_hash(const Fragment& fragment);

}  // namespace upn
