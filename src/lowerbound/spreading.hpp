// Spreading functions (Section 1, [15]).
//
// "For restricted classes of bounded degree networks (those with polynomial
// spreading function, i.e. networks where the size of the t-neighborhood of
// each node is bounded by a polynomial in t), constant slowdown simulations
// even only need O(n polylog n) size universal networks."
//
// The spreading function S(t) = max_v |ball(v, t)| separates mesh-like
// guests (S(t) = Theta(t^2)) from expander-like guests (S(t) = 2^{Theta(t)}),
// which is exactly why G_0 plants an expander: it defeats the polynomial-
// spreading escape hatch.  This module measures S(t) and fits its growth.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

struct SpreadingProfile {
  std::vector<std::uint32_t> max_ball;  ///< S(t) for t = 0..max_t (sampled max)
  double poly_exponent = 0.0;           ///< log-log slope of S(t) over the mid-range
  double exp_rate = 0.0;                ///< log2 S(t) growth per step, mid-range
};

/// Samples `samples` start vertices and returns the pointwise-max ball sizes
/// up to radius max_t, with growth fits.
[[nodiscard]] SpreadingProfile measure_spreading(const Graph& graph, std::uint32_t max_t,
                                                 std::uint32_t samples, Rng& rng);

/// True iff the measured spreading looks polynomial: S(t) <= bound_coeff *
/// t^bound_exp over the measured range (ignoring the saturated tail where
/// S(t) = n).
[[nodiscard]] bool has_polynomial_spreading(const SpreadingProfile& profile,
                                            double bound_coeff, double bound_exp);

}  // namespace upn
