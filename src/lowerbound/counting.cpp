#include "src/lowerbound/counting.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace upn {

double CountingConstants::r() const noexcept {
  return 3472.0 + 384.0 * std::log2(static_cast<double>(host_degree));
}

double log2_guest_count_lower(double n, const CountingConstants& k) {
  UPN_REQUIRE(n >= 2.0);
  const double exponent = (static_cast<double>(k.c) - k.g0_degree) / 2.0;
  return exponent * n * std::log2(n) - k.delta * n;
}

double log2_a_count(double n, double k, const CountingConstants& constants) {
  return constants.r() * n * k;
}

double log2_fragment_count(double n, double k, const CountingConstants& constants) {
  return log2_a_count(n, k, constants) + n * std::log2(constants.q * k);
}

double log2_multiplicity(double n, double m, const CountingConstants& constants) {
  UPN_REQUIRE(n >= 2.0 && m >= 2.0);
  const double half_residual = (static_cast<double>(constants.c) - constants.g0_degree) / 2.0;
  return half_residual * n * std::log2(n) -
         0.5 * constants.gamma * half_residual * n * std::log2(m);
}

double log2_simulable_count(double n, double m, double k,
                            const CountingConstants& constants) {
  return log2_multiplicity(n, m, constants) + log2_fragment_count(n, k, constants);
}

bool inefficiency_infeasible(double n, double m, double k,
                             const CountingConstants& constants) {
  return log2_simulable_count(n, m, k, constants) < log2_guest_count_lower(n, constants);
}

double min_feasible_inefficiency(double n, double m, const CountingConstants& constants) {
  UPN_REQUIRE(n >= 2.0 && m >= 2.0);
  // |G(k)| is increasing in k, so binary search for the crossover.
  double lo = 1e-9, hi = 1.0;
  while (inefficiency_infeasible(n, m, hi, constants)) hi *= 2.0;
  if (!inefficiency_infeasible(n, m, lo, constants)) return lo;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (inefficiency_infeasible(n, m, mid, constants)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  UPN_ENSURE(hi > 0.0);
  return hi;
}

double closed_form_inefficiency(double m, const CountingConstants& constants) {
  // The n-dependent terms of |G(k)| >= |U[G_0]| cancel, leaving the
  // n-independent threshold equation (the proof's final inequality):
  //     r k + log2(q k) + delta = gamma (c-12)/4 * log2 m.
  // The left side is strictly increasing in k; solve by bisection.
  const double half_residual = (static_cast<double>(constants.c) - constants.g0_degree) / 2.0;
  const double target =
      0.5 * constants.gamma * half_residual * std::log2(m) - constants.delta;
  const auto lhs = [&](double k) { return constants.r() * k + std::log2(constants.q * k); };
  double lo = 1e-12, hi = 1.0;
  while (lhs(lo) > target) lo /= 2.0;
  while (lhs(hi) < target) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (lhs(mid) < target ? lo : hi) = mid;
  }
  UPN_ENSURE(hi > 0.0);
  return hi;
}

std::uint32_t minimum_computation_length(double m) {
  if (m < 2.0) return 1;
  const auto length = static_cast<std::uint32_t>(std::ceil(2.0 * std::sqrt(std::log2(m))));
  UPN_ENSURE(length >= 2);
  return length;
}

}  // namespace upn
