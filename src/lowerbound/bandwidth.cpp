#include "src/lowerbound/bandwidth.hpp"

#include <stdexcept>

#include "src/routing/policies.hpp"
#include "src/util/contracts.hpp"

namespace upn {

BandwidthBound bandwidth_lower_bound(const Graph& guest, const Graph& host,
                                     const std::vector<NodeId>& embedding) {
  if (embedding.size() != guest.num_nodes()) {
    throw std::invalid_argument{"bandwidth_lower_bound: embedding size mismatch"};
  }
  UPN_REQUIRE(host.num_nodes() > 0);
  BandwidthBound bound;
  DistanceOracle oracle{host};
  std::uint32_t max_distance = 0;
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      // Both directions count: each endpoint needs the other's configuration.
      const std::uint32_t distance = oracle.to(embedding[v])[embedding[u]];
      bound.total_demand += distance;
      if (distance > max_distance) max_distance = distance;
    }
  }
  bound.link_capacity = 2 * host.num_edges();
  bound.multiport_bound =
      bound.link_capacity == 0
          ? 0.0
          : static_cast<double>(bound.total_demand) / static_cast<double>(bound.link_capacity);
  // Single-port: each step's transfers form a matching of <= m/2 pairs,
  // each advancing one packet by one hop.
  const double matchings = host.num_nodes() / 2.0;
  bound.single_port_bound =
      matchings == 0 ? 0.0 : static_cast<double>(bound.total_demand) / matchings;
  bound.diameter_bound = max_distance;
  UPN_ENSURE(bound.multiport_bound >= 0.0 && bound.single_port_bound >= 0.0);
  return bound;
}

}  // namespace upn
