// Topology surgery: the host that survives a fault plan.
//
// Two views of a degraded host, both needed downstream:
//
//  * surviving_subgraph  -- dead nodes removed, ids compacted.  The natural
//    object for connectivity / degradation analysis, with the node
//    remapping needed to translate embeddings.
//  * surviving_edges_graph -- the SAME node set as the original host, with
//    every dead link removed and dead nodes isolated.  This is the graph a
//    degraded simulation protocol is validated against: protocol processor
//    ids keep their meaning, and any op crossing a dead link fails the
//    unmodified Section 3.1 validator's host-neighbor check.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/topology/graph.hpp"

namespace upn {

/// Marker in SurvivingHost::to_survivor for nodes that did not survive.
inline constexpr NodeId kNoSurvivor = std::numeric_limits<NodeId>::max();

struct SurvivingHost {
  Graph graph;                      ///< live nodes only, ids compacted
  std::vector<NodeId> to_survivor;  ///< original id -> compact id (kNoSurvivor if dead)
  std::vector<NodeId> to_original;  ///< compact id -> original id
};

/// The host after every permanent fault in `plan` has activated (the
/// step = infinity view), with dead nodes removed and ids compacted.
[[nodiscard]] SurvivingHost surviving_subgraph(const Graph& host, const FaultPlan& plan);

/// Same node set as `host`; dead links removed, dead nodes isolated.
[[nodiscard]] Graph surviving_edges_graph(const Graph& host, const FaultPlan& plan);

/// Health summary of a degraded host (computed on the compacted survivor).
struct DegradationReport {
  std::uint32_t original_nodes = 0;
  std::uint32_t original_links = 0;
  std::uint32_t live_nodes = 0;
  std::uint32_t live_links = 0;
  std::uint32_t dead_nodes = 0;
  std::uint32_t dead_links = 0;  ///< includes links lost to dead endpoints
  std::uint32_t components = 0;
  std::uint32_t largest_component = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  bool connected = false;  ///< the live subgraph is non-empty and connected
};

[[nodiscard]] DegradationReport assess_degradation(const Graph& host, const FaultPlan& plan);

}  // namespace upn
