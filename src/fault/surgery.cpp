#include "src/fault/surgery.hpp"

#include "src/topology/properties.hpp"

namespace upn {

SurvivingHost surviving_subgraph(const Graph& host, const FaultPlan& plan) {
  const std::uint32_t n = host.num_nodes();
  SurvivingHost result;
  result.to_survivor.assign(n, kNoSurvivor);
  for (NodeId v = 0; v < n; ++v) {
    if (!plan.node_ever_fails(v)) {
      result.to_survivor[v] = static_cast<NodeId>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }
  GraphBuilder builder{static_cast<std::uint32_t>(result.to_original.size()),
                       host.name() + "/survivors"};
  for (const auto& [u, v] : host.edge_list()) {
    if (result.to_survivor[u] == kNoSurvivor || result.to_survivor[v] == kNoSurvivor) continue;
    if (plan.link_ever_fails(u, v)) continue;
    builder.add_edge(result.to_survivor[u], result.to_survivor[v]);
  }
  result.graph = std::move(builder).build();
  return result;
}

Graph surviving_edges_graph(const Graph& host, const FaultPlan& plan) {
  GraphBuilder builder{host.num_nodes(), host.name() + "/live-edges"};
  for (const auto& [u, v] : host.edge_list()) {
    if (!plan.link_ever_fails(u, v)) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

DegradationReport assess_degradation(const Graph& host, const FaultPlan& plan) {
  const SurvivingHost survivor = surviving_subgraph(host, plan);
  DegradationReport report;
  report.original_nodes = host.num_nodes();
  report.original_links = static_cast<std::uint32_t>(host.num_edges());
  report.live_nodes = survivor.graph.num_nodes();
  report.live_links = static_cast<std::uint32_t>(survivor.graph.num_edges());
  report.dead_nodes = report.original_nodes - report.live_nodes;
  report.dead_links = report.original_links - report.live_links;
  report.components = connected_components(survivor.graph);
  report.largest_component = largest_component_size(survivor.graph);
  report.min_degree = min_degree(survivor.graph);
  report.max_degree = survivor.graph.max_degree();
  report.connected = report.live_nodes > 0 && report.components == 1;
  return report;
}

}  // namespace upn
