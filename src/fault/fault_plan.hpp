// Deterministic fault plans: scheduled hardware degradation for hosts.
//
// The paper's universality guarantee (Theorem 2.1) assumes a pristine host
// network M.  A FaultPlan describes how M degrades over host time: permanent
// link failures, permanent node failures (which take all incident links with
// them), and transient packet-drop windows.  Plans are pure data -- fully
// deterministic given their seed -- so every degradation experiment is
// reproducible bit-for-bit, and they serialize to a line-oriented text
// format mirroring pebble/io.  The router (routing/router.hpp) consults a
// plan each step; topology surgery (fault/surgery.hpp) computes the
// surviving host; the self-healing simulator (core/fault_tolerant_sim.hpp)
// re-embeds guests off dead hosts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Permanent failure of link {u, v} from host step `step` onward.
struct LinkFault {
  NodeId u = 0;
  NodeId v = 0;
  std::uint32_t step = 0;

  friend bool operator==(const LinkFault&, const LinkFault&) = default;
};

/// Permanent failure of node `node` from host step `step` onward; every
/// incident link dies with it.
struct NodeFault {
  NodeId node = 0;
  std::uint32_t step = 0;

  friend bool operator==(const NodeFault&, const NodeFault&) = default;
};

/// Repair of link {u, v} at host step `step`: the link returns to service
/// until a later LinkFault kills it again.  Within a single step a repair
/// beats a fault (events apply fault-first, repair-second), so a plan that
/// kills and heals a link at the same step leaves it alive.  Repairs make
/// churn bidirectional; they never resurrect a dead NODE (node faults stay
/// permanent), and they do not erase history: link_ever_fails() still
/// reports a healed link as having failed at some point.
struct LinkRepair {
  NodeId u = 0;
  NodeId v = 0;
  std::uint32_t step = 0;

  friend bool operator==(const LinkRepair&, const LinkRepair&) = default;
};

/// Transient fault window: a packet crossing {u, v} during a host step in
/// [begin, end) is dropped with probability `prob`.  The drop decision is a
/// deterministic hash of (plan seed, edge, step, packet id), so replaying
/// the same routing run reproduces the same drops.
struct DropWindow {
  NodeId u = 0;
  NodeId v = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  double prob = 0.0;

  friend bool operator==(const DropWindow&, const DropWindow&) = default;
};

/// A complete degradation schedule.  Queries are linear in the number of
/// faults; hot paths should use FaultClock, which amortizes activation
/// tracking as the step counter advances.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  void add_link_fault(const LinkFault& fault);
  void add_node_fault(const NodeFault& fault);
  void add_link_repair(const LinkRepair& repair);
  void add_drop_window(const DropWindow& window);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<LinkFault>& link_faults() const noexcept {
    return link_faults_;
  }
  [[nodiscard]] const std::vector<NodeFault>& node_faults() const noexcept {
    return node_faults_;
  }
  [[nodiscard]] const std::vector<LinkRepair>& link_repairs() const noexcept {
    return link_repairs_;
  }
  [[nodiscard]] const std::vector<DropWindow>& drop_windows() const noexcept {
    return drop_windows_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return link_faults_.empty() && node_faults_.empty() && link_repairs_.empty() &&
           drop_windows_.empty();
  }

  /// True iff node v has not permanently failed by host step `step`.
  [[nodiscard]] bool node_alive(NodeId v, std::uint32_t step) const noexcept;

  /// True iff link {u, v} and both endpoints are alive at host step `step`.
  /// With repairs, liveness is the state-machine view: the latest fault or
  /// repair on the link at or before `step` decides (repair wins a tie).
  [[nodiscard]] bool link_alive(NodeId u, NodeId v, std::uint32_t step) const noexcept;

  /// Deterministic transient-drop decision for a packet crossing {u, v}.
  [[nodiscard]] bool drops_packet(NodeId u, NodeId v, std::uint32_t step,
                                  std::uint32_t packet_id) const noexcept;

  /// True iff node v fails at SOME step (the step = infinity view).
  [[nodiscard]] bool node_ever_fails(NodeId v) const noexcept;

  /// True iff link {u, v} or an endpoint fails at some step (even if a
  /// repair later heals the link).
  [[nodiscard]] bool link_ever_fails(NodeId u, NodeId v) const noexcept;

  /// Host steps at which permanent faults or repairs activate, ascending
  /// and unique.
  [[nodiscard]] std::vector<std::uint32_t> epochs() const;

  /// The plan as revealed to an observer at host step `step`: links and
  /// nodes that are NET-dead at `step` (their latest activated event is a
  /// fault) appear as step-0 faults, future events and already-applied
  /// repairs are removed, drop windows and seed are kept verbatim.  The
  /// self-healing simulator uses this to quantize fault activation to
  /// guest-step boundaries; with repairs the reveal is a snapshot of the
  /// surviving topology, not an event log.
  [[nodiscard]] FaultPlan revealed_at(std::uint32_t step) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<LinkFault> link_faults_;
  std::vector<NodeFault> node_faults_;
  std::vector<LinkRepair> link_repairs_;
  std::vector<DropWindow> drop_windows_;
};

/// Incremental plan evaluator for monotonically advancing step counters.
/// Tracks the set of active permanent faults; O(changes) per advance, O(1)
/// node queries, O(log deg)-free hashed link queries.
class FaultClock {
 public:
  /// `num_nodes` bounds the node ids appearing in the plan (out-of-range
  /// ids in the plan are ignored rather than tracked).
  FaultClock(const FaultPlan& plan, std::uint32_t num_nodes);

  /// Advances the clock to `step` (monotonic; earlier steps are a no-op).
  /// Returns true iff the live topology changed since the last call -- new
  /// permanent faults activated or repairs healed links.
  bool advance(std::uint32_t step);

  [[nodiscard]] std::uint32_t step() const noexcept { return step_; }
  [[nodiscard]] bool node_alive(NodeId v) const noexcept { return dead_nodes_[v] == 0; }
  [[nodiscard]] bool link_alive(NodeId u, NodeId v) const noexcept;
  [[nodiscard]] bool drops_packet(NodeId u, NodeId v, std::uint32_t packet_id) const noexcept {
    return plan_->drops_packet(u, v, step_, packet_id);
  }
  [[nodiscard]] const std::vector<char>& dead_nodes() const noexcept { return dead_nodes_; }
  [[nodiscard]] bool any_faults_active() const noexcept { return faults_active_; }

 private:
  const FaultPlan* plan_;
  std::uint32_t step_ = 0;
  bool started_ = false;
  bool faults_active_ = false;
  /// One scheduled link state change; repairs sort after faults at the same
  /// step so a same-step kill+heal leaves the link alive.
  struct LinkEvent {
    NodeId u = 0;
    NodeId v = 0;
    std::uint32_t step = 0;
    bool repair = false;
  };

  std::vector<char> dead_nodes_;
  std::vector<std::uint64_t> dead_links_;  ///< sorted keys (min << 32 | max)
  std::size_t next_link_ = 0;              ///< cursor into sorted link events
  std::size_t next_node_ = 0;              ///< cursor into sorted node activations
  std::vector<LinkEvent> link_events_;
  std::vector<NodeFault> nodes_by_step_;
};

// ---- Generators ----------------------------------------------------------
//
// All generators are coupled across rates: whether an element fails at rate
// r is decided by comparing a per-element hash in [0, 1) against r, so the
// fault set at rate r' > r is a superset of the set at rate r (same seed).
// Degradation curves swept over rates are therefore monotone in the injected
// damage, not just in expectation.

/// Each host link independently fails permanently at `step` with
/// probability `rate`.
[[nodiscard]] FaultPlan make_uniform_link_faults(const Graph& host, double rate,
                                                 std::uint64_t seed, std::uint32_t step = 0);

/// Each host node independently fails permanently at `step` with
/// probability `rate`.
[[nodiscard]] FaultPlan make_uniform_node_faults(const Graph& host, double rate,
                                                 std::uint64_t seed, std::uint32_t step = 0);

/// Targeted cut: exactly the given links fail at `step`.
[[nodiscard]] FaultPlan make_targeted_cut(const std::vector<std::pair<NodeId, NodeId>>& links,
                                          std::uint32_t step, std::uint64_t seed = 0);

/// Region failure: every node within BFS distance `radius` of `center`
/// fails at `step` (models the loss of a rack / enclosure).
[[nodiscard]] FaultPlan make_region_fault(const Graph& host, NodeId center,
                                          std::uint32_t radius, std::uint32_t step,
                                          std::uint64_t seed = 0);

/// Every host link drops packets with probability `rate` during host steps
/// [begin, end); end = UINT32_MAX means forever.
[[nodiscard]] FaultPlan make_uniform_drops(const Graph& host, double rate, std::uint64_t seed,
                                           std::uint32_t begin = 0,
                                           std::uint32_t end = 0xffffffffu);

/// Live churn: each host link participates with probability `rate` (coupled
/// across rates, like the other generators: the churning set at a higher
/// rate contains the set at a lower rate under the same seed).  Each
/// participating link cycles for the whole horizon: it dies at a per-link
/// jittered offset inside every `period`-step window and heals `downtime`
/// steps after each death, so at any instant roughly rate * downtime/period
/// of the links are down while the topology keeps changing.  Requires
/// 0 < downtime < period.
[[nodiscard]] FaultPlan make_link_churn(const Graph& host, double rate, std::uint64_t seed,
                                        std::uint32_t horizon, std::uint32_t period = 32,
                                        std::uint32_t downtime = 8);

/// Merges b's faults into a (seed of `a` wins).
[[nodiscard]] FaultPlan merge_plans(const FaultPlan& a, const FaultPlan& b);

// ---- Textual (de)serialization, mirroring pebble/io ----------------------
//
// Format (line-oriented, whitespace-separated):
//   upn-faultplan 1 <seed> <num_link_faults> <num_node_faults> <num_drop_windows>
//   upn-faultplan 2 <seed> <num_link_faults> <num_node_faults> <num_drop_windows> <num_repairs>
//   L <u> <v> <step>
//   N <node> <step>
//   D <u> <v> <begin> <end> <prob>
//   R <u> <v> <step>
//
// Plans without repairs serialize as version 1, byte-identical to the
// historical format, so stored plans keep round-tripping; any repair event
// promotes the header to version 2 with the extra repair count.

void write_fault_plan(std::ostream& os, const FaultPlan& plan);

/// Parses a plan; throws std::runtime_error with a line number on any
/// malformed input.
[[nodiscard]] FaultPlan read_fault_plan(std::istream& is);

}  // namespace upn
