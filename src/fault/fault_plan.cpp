#include "src/fault/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/topology/properties.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn {

namespace {

constexpr std::uint64_t link_key(NodeId u, NodeId v) noexcept {
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Uniform [0, 1) hash used by both the coupled generators and the drop
/// decision; independent per (seed, salt) pair.
double hash_uniform(std::uint64_t seed, std::uint64_t salt) noexcept {
  return static_cast<double>(mix64(seed ^ mix64(salt)) >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::add_link_fault(const LinkFault& fault) {
  if (fault.u == fault.v) {
    throw std::invalid_argument{"FaultPlan: link fault endpoints must differ"};
  }
  link_faults_.push_back(fault);
}

void FaultPlan::add_node_fault(const NodeFault& fault) { node_faults_.push_back(fault); }

void FaultPlan::add_drop_window(const DropWindow& window) {
  if (window.prob < 0.0 || window.prob > 1.0) {
    throw std::invalid_argument{"FaultPlan: drop probability must be in [0, 1]"};
  }
  if (window.begin >= window.end) {
    throw std::invalid_argument{"FaultPlan: drop window must satisfy begin < end"};
  }
  drop_windows_.push_back(window);
}

bool FaultPlan::node_alive(NodeId v, std::uint32_t step) const noexcept {
  for (const NodeFault& f : node_faults_) {
    if (f.node == v && f.step <= step) return false;
  }
  return true;
}

bool FaultPlan::link_alive(NodeId u, NodeId v, std::uint32_t step) const noexcept {
  if (!node_alive(u, step) || !node_alive(v, step)) return false;
  const std::uint64_t key = link_key(u, v);
  for (const LinkFault& f : link_faults_) {
    if (link_key(f.u, f.v) == key && f.step <= step) return false;
  }
  return true;
}

bool FaultPlan::drops_packet(NodeId u, NodeId v, std::uint32_t step,
                             std::uint32_t packet_id) const noexcept {
  const std::uint64_t key = link_key(u, v);
  for (const DropWindow& w : drop_windows_) {
    if (link_key(w.u, w.v) != key || step < w.begin || step >= w.end) continue;
    const std::uint64_t salt =
        key ^ (static_cast<std::uint64_t>(step) << 20) ^ (0xd1b54a32d192ed03ULL * packet_id);
    if (hash_uniform(seed_ ^ 0x7fau, salt) < w.prob) return true;
  }
  return false;
}

bool FaultPlan::node_ever_fails(NodeId v) const noexcept {
  for (const NodeFault& f : node_faults_) {
    if (f.node == v) return true;
  }
  return false;
}

bool FaultPlan::link_ever_fails(NodeId u, NodeId v) const noexcept {
  if (node_ever_fails(u) || node_ever_fails(v)) return true;
  const std::uint64_t key = link_key(u, v);
  for (const LinkFault& f : link_faults_) {
    if (link_key(f.u, f.v) == key) return true;
  }
  return false;
}

std::vector<std::uint32_t> FaultPlan::epochs() const {
  std::vector<std::uint32_t> steps;
  steps.reserve(link_faults_.size() + node_faults_.size());
  for (const LinkFault& f : link_faults_) steps.push_back(f.step);
  for (const NodeFault& f : node_faults_) steps.push_back(f.step);
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

FaultPlan FaultPlan::revealed_at(std::uint32_t step) const {
  FaultPlan revealed{seed_};
  for (const LinkFault& f : link_faults_) {
    if (f.step <= step) revealed.add_link_fault(LinkFault{f.u, f.v, 0});
  }
  for (const NodeFault& f : node_faults_) {
    if (f.step <= step) revealed.add_node_fault(NodeFault{f.node, 0});
  }
  for (const DropWindow& w : drop_windows_) revealed.add_drop_window(w);
  UPN_ENSURE(revealed.link_faults().size() <= link_faults_.size() &&
                 revealed.node_faults().size() <= node_faults_.size(),
             "revealing cannot invent permanent faults");
  UPN_ENSURE(revealed.drop_windows().size() == drop_windows_.size(),
             "drop windows are revealed verbatim");
  return revealed;
}

FaultClock::FaultClock(const FaultPlan& plan, std::uint32_t num_nodes)
    : plan_(&plan),
      dead_nodes_(num_nodes, 0),
      links_by_step_(plan.link_faults()),
      nodes_by_step_(plan.node_faults()) {
  const auto by_step = [](const auto& a, const auto& b) { return a.step < b.step; };
  std::stable_sort(links_by_step_.begin(), links_by_step_.end(), by_step);
  std::stable_sort(nodes_by_step_.begin(), nodes_by_step_.end(), by_step);
}

bool FaultClock::advance(std::uint32_t step) {
  if (started_ && step <= step_) return false;
  started_ = true;
  step_ = step;
  bool changed = false;
  while (next_node_ < nodes_by_step_.size() && nodes_by_step_[next_node_].step <= step) {
    const NodeId v = nodes_by_step_[next_node_].node;
    if (v < dead_nodes_.size() && dead_nodes_[v] == 0) {
      dead_nodes_[v] = 1;
      changed = true;
    }
    ++next_node_;
  }
  while (next_link_ < links_by_step_.size() && links_by_step_[next_link_].step <= step) {
    const std::uint64_t key = link_key(links_by_step_[next_link_].u, links_by_step_[next_link_].v);
    const auto it = std::lower_bound(dead_links_.begin(), dead_links_.end(), key);
    if (it == dead_links_.end() || *it != key) {
      dead_links_.insert(it, key);
      changed = true;
    }
    ++next_link_;
  }
  if (changed) faults_active_ = true;
  return changed;
}

bool FaultClock::link_alive(NodeId u, NodeId v) const noexcept {
  if (dead_nodes_[u] != 0 || dead_nodes_[v] != 0) return false;
  const std::uint64_t key = link_key(u, v);
  return !std::binary_search(dead_links_.begin(), dead_links_.end(), key);
}

FaultPlan make_uniform_link_faults(const Graph& host, double rate, std::uint64_t seed,
                                   std::uint32_t step) {
  UPN_REQUIRE(rate >= 0.0 && rate <= 1.0,
              "make_uniform_link_faults: rate is a probability");
  FaultPlan plan{seed};
  for (const auto& [u, v] : host.edge_list()) {
    if (hash_uniform(seed ^ 0x11bcULL, link_key(u, v)) < rate) {
      plan.add_link_fault(LinkFault{u, v, step});
    }
  }
  return plan;
}

FaultPlan make_uniform_node_faults(const Graph& host, double rate, std::uint64_t seed,
                                   std::uint32_t step) {
  UPN_REQUIRE(rate >= 0.0 && rate <= 1.0,
              "make_uniform_node_faults: rate is a probability");
  FaultPlan plan{seed};
  for (NodeId v = 0; v < host.num_nodes(); ++v) {
    if (hash_uniform(seed ^ 0x23cdULL, v) < rate) {
      plan.add_node_fault(NodeFault{v, step});
    }
  }
  return plan;
}

FaultPlan make_targeted_cut(const std::vector<std::pair<NodeId, NodeId>>& links,
                            std::uint32_t step, std::uint64_t seed) {
  FaultPlan plan{seed};
  for (const auto& [u, v] : links) plan.add_link_fault(LinkFault{u, v, step});
  return plan;
}

FaultPlan make_region_fault(const Graph& host, NodeId center, std::uint32_t radius,
                            std::uint32_t step, std::uint64_t seed) {
  UPN_REQUIRE(center < host.num_nodes(), "make_region_fault: center must be a host node");
  FaultPlan plan{seed};
  const std::vector<std::uint32_t> dist = bfs_distances(host, center);
  for (NodeId v = 0; v < host.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) {
      plan.add_node_fault(NodeFault{v, step});
    }
  }
  return plan;
}

FaultPlan make_uniform_drops(const Graph& host, double rate, std::uint64_t seed,
                             std::uint32_t begin, std::uint32_t end) {
  FaultPlan plan{seed};
  if (rate <= 0.0) return plan;
  for (const auto& [u, v] : host.edge_list()) {
    plan.add_drop_window(DropWindow{u, v, begin, end, rate});
  }
  return plan;
}

FaultPlan merge_plans(const FaultPlan& a, const FaultPlan& b) {
  FaultPlan merged{a.seed()};
  for (const LinkFault& f : a.link_faults()) merged.add_link_fault(f);
  for (const NodeFault& f : a.node_faults()) merged.add_node_fault(f);
  for (const DropWindow& w : a.drop_windows()) merged.add_drop_window(w);
  for (const LinkFault& f : b.link_faults()) merged.add_link_fault(f);
  for (const NodeFault& f : b.node_faults()) merged.add_node_fault(f);
  for (const DropWindow& w : b.drop_windows()) merged.add_drop_window(w);
  return merged;
}

void write_fault_plan(std::ostream& os, const FaultPlan& plan) {
  os << "upn-faultplan 1 " << plan.seed() << ' ' << plan.link_faults().size() << ' '
     << plan.node_faults().size() << ' ' << plan.drop_windows().size() << '\n';
  for (const LinkFault& f : plan.link_faults()) {
    os << "L " << f.u << ' ' << f.v << ' ' << f.step << '\n';
  }
  for (const NodeFault& f : plan.node_faults()) {
    os << "N " << f.node << ' ' << f.step << '\n';
  }
  for (const DropWindow& w : plan.drop_windows()) {
    std::ostringstream prob;
    prob << std::setprecision(17) << w.prob;
    os << "D " << w.u << ' ' << w.v << ' ' << w.begin << ' ' << w.end << ' ' << prob.str()
       << '\n';
  }
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_fault_plan: line " + std::to_string(line) + ": " + what};
}

}  // namespace

FaultPlan read_fault_plan(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  std::istringstream header{line};
  std::string magic;
  int version = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_links = 0, num_nodes = 0, num_drops = 0;
  if (!(header >> magic >> version >> seed >> num_links >> num_nodes >> num_drops) ||
      magic != "upn-faultplan" || version != 1) {
    fail(line_no,
         "bad header (expected 'upn-faultplan 1 <seed> <links> <nodes> <drops>')");
  }
  FaultPlan plan{seed};
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields{line};
    char kind = 0;
    fields >> kind;
    try {
      switch (kind) {
        case 'L': {
          LinkFault f;
          if (!(fields >> f.u >> f.v >> f.step)) fail(line_no, "malformed link fault");
          plan.add_link_fault(f);
          break;
        }
        case 'N': {
          NodeFault f;
          if (!(fields >> f.node >> f.step)) fail(line_no, "malformed node fault");
          plan.add_node_fault(f);
          break;
        }
        case 'D': {
          DropWindow w;
          if (!(fields >> w.u >> w.v >> w.begin >> w.end >> w.prob)) {
            fail(line_no, "malformed drop window");
          }
          plan.add_drop_window(w);
          break;
        }
        default:
          fail(line_no, "unknown record kind");
      }
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
    std::string trailing;
    if (fields >> trailing) fail(line_no, "trailing garbage");
  }
  if (plan.link_faults().size() != num_links || plan.node_faults().size() != num_nodes ||
      plan.drop_windows().size() != num_drops) {
    fail(line_no, "record counts do not match header");
  }
  return plan;
}

}  // namespace upn
