#include "src/fault/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/topology/properties.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn {

namespace {

constexpr std::uint64_t link_key(NodeId u, NodeId v) noexcept {
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Uniform [0, 1) hash used by both the coupled generators and the drop
/// decision; independent per (seed, salt) pair.
double hash_uniform(std::uint64_t seed, std::uint64_t salt) noexcept {
  return static_cast<double>(mix64(seed ^ mix64(salt)) >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::add_link_fault(const LinkFault& fault) {
  if (fault.u == fault.v) {
    throw std::invalid_argument{"FaultPlan: link fault endpoints must differ"};
  }
  link_faults_.push_back(fault);
}

void FaultPlan::add_node_fault(const NodeFault& fault) { node_faults_.push_back(fault); }

void FaultPlan::add_link_repair(const LinkRepair& repair) {
  if (repair.u == repair.v) {
    throw std::invalid_argument{"FaultPlan: link repair endpoints must differ"};
  }
  link_repairs_.push_back(repair);
  UPN_ENSURE(link_repairs_.back().u != link_repairs_.back().v,
             "recorded repair endpoints differ");
}

void FaultPlan::add_drop_window(const DropWindow& window) {
  if (window.prob < 0.0 || window.prob > 1.0) {
    throw std::invalid_argument{"FaultPlan: drop probability must be in [0, 1]"};
  }
  if (window.begin >= window.end) {
    throw std::invalid_argument{"FaultPlan: drop window must satisfy begin < end"};
  }
  drop_windows_.push_back(window);
}

bool FaultPlan::node_alive(NodeId v, std::uint32_t step) const noexcept {
  for (const NodeFault& f : node_faults_) {
    if (f.node == v && f.step <= step) return false;
  }
  return true;
}

bool FaultPlan::link_alive(NodeId u, NodeId v, std::uint32_t step) const noexcept {
  if (!node_alive(u, step) || !node_alive(v, step)) return false;
  const std::uint64_t key = link_key(u, v);
  bool faulted = false;
  std::uint32_t last_fault = 0;
  for (const LinkFault& f : link_faults_) {
    if (link_key(f.u, f.v) == key && f.step <= step) {
      faulted = true;
      last_fault = std::max(last_fault, f.step);
    }
  }
  if (!faulted) return true;
  // A repair no earlier than the newest activated fault heals the link
  // (repair wins a same-step tie: events apply fault-first).
  for (const LinkRepair& r : link_repairs_) {
    if (link_key(r.u, r.v) == key && r.step <= step && r.step >= last_fault) return true;
  }
  return false;
}

bool FaultPlan::drops_packet(NodeId u, NodeId v, std::uint32_t step,
                             std::uint32_t packet_id) const noexcept {
  const std::uint64_t key = link_key(u, v);
  for (const DropWindow& w : drop_windows_) {
    if (link_key(w.u, w.v) != key || step < w.begin || step >= w.end) continue;
    const std::uint64_t salt =
        key ^ (static_cast<std::uint64_t>(step) << 20) ^ (0xd1b54a32d192ed03ULL * packet_id);
    if (hash_uniform(seed_ ^ 0x7fau, salt) < w.prob) return true;
  }
  return false;
}

bool FaultPlan::node_ever_fails(NodeId v) const noexcept {
  for (const NodeFault& f : node_faults_) {
    if (f.node == v) return true;
  }
  return false;
}

bool FaultPlan::link_ever_fails(NodeId u, NodeId v) const noexcept {
  if (node_ever_fails(u) || node_ever_fails(v)) return true;
  const std::uint64_t key = link_key(u, v);
  for (const LinkFault& f : link_faults_) {
    if (link_key(f.u, f.v) == key) return true;
  }
  return false;
}

std::vector<std::uint32_t> FaultPlan::epochs() const {
  std::vector<std::uint32_t> steps;
  steps.reserve(link_faults_.size() + node_faults_.size() + link_repairs_.size());
  for (const LinkFault& f : link_faults_) steps.push_back(f.step);
  for (const NodeFault& f : node_faults_) steps.push_back(f.step);
  for (const LinkRepair& r : link_repairs_) steps.push_back(r.step);
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

FaultPlan FaultPlan::revealed_at(std::uint32_t step) const {
  FaultPlan revealed{seed_};
  // Net view per link: only links whose latest activated event is a fault
  // are revealed (as step-0 faults); healed links and future events vanish.
  std::vector<std::uint64_t> seen;
  for (const LinkFault& f : link_faults_) {
    const std::uint64_t key = link_key(f.u, f.v);
    if (f.step > step || std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    std::uint32_t last_fault = 0;
    for (const LinkFault& g : link_faults_) {
      if (link_key(g.u, g.v) == key && g.step <= step) last_fault = std::max(last_fault, g.step);
    }
    bool healed = false;
    for (const LinkRepair& r : link_repairs_) {
      healed |= link_key(r.u, r.v) == key && r.step <= step && r.step >= last_fault;
    }
    if (!healed) revealed.add_link_fault(LinkFault{f.u, f.v, 0});
  }
  for (const NodeFault& f : node_faults_) {
    if (f.step <= step) revealed.add_node_fault(NodeFault{f.node, 0});
  }
  for (const DropWindow& w : drop_windows_) revealed.add_drop_window(w);
  UPN_ENSURE(revealed.link_faults().size() <= link_faults_.size() &&
                 revealed.node_faults().size() <= node_faults_.size(),
             "revealing cannot invent permanent faults");
  UPN_ENSURE(revealed.link_repairs().empty(),
             "the reveal is a net snapshot; repairs are already applied");
  UPN_ENSURE(revealed.drop_windows().size() == drop_windows_.size(),
             "drop windows are revealed verbatim");
  return revealed;
}

FaultClock::FaultClock(const FaultPlan& plan, std::uint32_t num_nodes)
    : plan_(&plan), dead_nodes_(num_nodes, 0), nodes_by_step_(plan.node_faults()) {
  link_events_.reserve(plan.link_faults().size() + plan.link_repairs().size());
  for (const LinkFault& f : plan.link_faults()) {
    link_events_.push_back(LinkEvent{f.u, f.v, f.step, false});
  }
  for (const LinkRepair& r : plan.link_repairs()) {
    link_events_.push_back(LinkEvent{r.u, r.v, r.step, true});
  }
  // Repairs sort after faults within a step so a same-step kill+heal nets
  // out alive; the stable sort keeps insertion order among equals.
  const auto by_step_then_repair = [](const LinkEvent& a, const LinkEvent& b) {
    return a.step != b.step ? a.step < b.step : (!a.repair && b.repair);
  };
  std::stable_sort(link_events_.begin(), link_events_.end(), by_step_then_repair);
  const auto by_step = [](const auto& a, const auto& b) { return a.step < b.step; };
  std::stable_sort(nodes_by_step_.begin(), nodes_by_step_.end(), by_step);
}

bool FaultClock::advance(std::uint32_t step) {
  if (started_ && step <= step_) return false;
  started_ = true;
  step_ = step;
  bool changed = false;
  while (next_node_ < nodes_by_step_.size() && nodes_by_step_[next_node_].step <= step) {
    const NodeId v = nodes_by_step_[next_node_].node;
    if (v < dead_nodes_.size() && dead_nodes_[v] == 0) {
      dead_nodes_[v] = 1;
      changed = true;
    }
    ++next_node_;
  }
  while (next_link_ < link_events_.size() && link_events_[next_link_].step <= step) {
    const LinkEvent& event = link_events_[next_link_];
    const std::uint64_t key = link_key(event.u, event.v);
    const auto it = std::lower_bound(dead_links_.begin(), dead_links_.end(), key);
    const bool dead = it != dead_links_.end() && *it == key;
    if (event.repair && dead) {
      dead_links_.erase(it);
      changed = true;
    } else if (!event.repair && !dead) {
      dead_links_.insert(it, key);
      changed = true;
    }
    ++next_link_;
  }
  if (changed) faults_active_ = true;
  return changed;
}

bool FaultClock::link_alive(NodeId u, NodeId v) const noexcept {
  if (dead_nodes_[u] != 0 || dead_nodes_[v] != 0) return false;
  const std::uint64_t key = link_key(u, v);
  return !std::binary_search(dead_links_.begin(), dead_links_.end(), key);
}

FaultPlan make_uniform_link_faults(const Graph& host, double rate, std::uint64_t seed,
                                   std::uint32_t step) {
  UPN_REQUIRE(rate >= 0.0 && rate <= 1.0,
              "make_uniform_link_faults: rate is a probability");
  FaultPlan plan{seed};
  for (const auto& [u, v] : host.edge_list()) {
    if (hash_uniform(seed ^ 0x11bcULL, link_key(u, v)) < rate) {
      plan.add_link_fault(LinkFault{u, v, step});
    }
  }
  return plan;
}

FaultPlan make_uniform_node_faults(const Graph& host, double rate, std::uint64_t seed,
                                   std::uint32_t step) {
  UPN_REQUIRE(rate >= 0.0 && rate <= 1.0,
              "make_uniform_node_faults: rate is a probability");
  FaultPlan plan{seed};
  for (NodeId v = 0; v < host.num_nodes(); ++v) {
    if (hash_uniform(seed ^ 0x23cdULL, v) < rate) {
      plan.add_node_fault(NodeFault{v, step});
    }
  }
  return plan;
}

FaultPlan make_targeted_cut(const std::vector<std::pair<NodeId, NodeId>>& links,
                            std::uint32_t step, std::uint64_t seed) {
  FaultPlan plan{seed};
  for (const auto& [u, v] : links) plan.add_link_fault(LinkFault{u, v, step});
  return plan;
}

FaultPlan make_region_fault(const Graph& host, NodeId center, std::uint32_t radius,
                            std::uint32_t step, std::uint64_t seed) {
  UPN_REQUIRE(center < host.num_nodes(), "make_region_fault: center must be a host node");
  FaultPlan plan{seed};
  const std::vector<std::uint32_t> dist = bfs_distances(host, center);
  for (NodeId v = 0; v < host.num_nodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) {
      plan.add_node_fault(NodeFault{v, step});
    }
  }
  return plan;
}

FaultPlan make_uniform_drops(const Graph& host, double rate, std::uint64_t seed,
                             std::uint32_t begin, std::uint32_t end) {
  FaultPlan plan{seed};
  if (rate <= 0.0) return plan;
  for (const auto& [u, v] : host.edge_list()) {
    plan.add_drop_window(DropWindow{u, v, begin, end, rate});
  }
  return plan;
}

FaultPlan make_link_churn(const Graph& host, double rate, std::uint64_t seed,
                          std::uint32_t horizon, std::uint32_t period,
                          std::uint32_t downtime) {
  UPN_REQUIRE(rate >= 0.0 && rate <= 1.0, "make_link_churn: rate is a probability");
  UPN_REQUIRE(downtime > 0 && downtime < period,
              "make_link_churn: need 0 < downtime < period");
  FaultPlan plan{seed};
  for (const auto& [u, v] : host.edge_list()) {
    const std::uint64_t key = link_key(u, v);
    if (hash_uniform(seed ^ 0xc592ULL, key) >= rate) continue;
    // Deterministic per-link phase: the link dies at `offset` into every
    // period and heals `downtime` steps later, for as long as the horizon
    // lasts.  Different links churn out of phase, so the live topology
    // keeps changing rather than breathing in lock-step.
    const auto offset = static_cast<std::uint32_t>(
        mix64(seed ^ 0x0ff5e7ULL ^ key) % period);
    for (std::uint32_t t = offset; t < horizon; t += period) {
      plan.add_link_fault(LinkFault{u, v, t});
      plan.add_link_repair(LinkRepair{u, v, t + downtime});
    }
  }
  return plan;
}

FaultPlan merge_plans(const FaultPlan& a, const FaultPlan& b) {
  FaultPlan merged{a.seed()};
  for (const LinkFault& f : a.link_faults()) merged.add_link_fault(f);
  for (const NodeFault& f : a.node_faults()) merged.add_node_fault(f);
  for (const LinkRepair& r : a.link_repairs()) merged.add_link_repair(r);
  for (const DropWindow& w : a.drop_windows()) merged.add_drop_window(w);
  for (const LinkFault& f : b.link_faults()) merged.add_link_fault(f);
  for (const NodeFault& f : b.node_faults()) merged.add_node_fault(f);
  for (const LinkRepair& r : b.link_repairs()) merged.add_link_repair(r);
  for (const DropWindow& w : b.drop_windows()) merged.add_drop_window(w);
  return merged;
}

void write_fault_plan(std::ostream& os, const FaultPlan& plan) {
  // Version 1 (no repair count) is kept byte-identical for plans without
  // repairs so historical pins and stored plans stay valid.
  if (plan.link_repairs().empty()) {
    os << "upn-faultplan 1 " << plan.seed() << ' ' << plan.link_faults().size() << ' '
       << plan.node_faults().size() << ' ' << plan.drop_windows().size() << '\n';
  } else {
    os << "upn-faultplan 2 " << plan.seed() << ' ' << plan.link_faults().size() << ' '
       << plan.node_faults().size() << ' ' << plan.drop_windows().size() << ' '
       << plan.link_repairs().size() << '\n';
  }
  for (const LinkFault& f : plan.link_faults()) {
    os << "L " << f.u << ' ' << f.v << ' ' << f.step << '\n';
  }
  for (const NodeFault& f : plan.node_faults()) {
    os << "N " << f.node << ' ' << f.step << '\n';
  }
  for (const DropWindow& w : plan.drop_windows()) {
    std::ostringstream prob;
    prob << std::setprecision(17) << w.prob;
    os << "D " << w.u << ' ' << w.v << ' ' << w.begin << ' ' << w.end << ' ' << prob.str()
       << '\n';
  }
  for (const LinkRepair& r : plan.link_repairs()) {
    os << "R " << r.u << ' ' << r.v << ' ' << r.step << '\n';
  }
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_fault_plan: line " + std::to_string(line) + ": " + what};
}

}  // namespace

FaultPlan read_fault_plan(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  std::istringstream header{line};
  std::string magic;
  int version = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_links = 0, num_nodes = 0, num_drops = 0, num_repairs = 0;
  if (!(header >> magic >> version >> seed >> num_links >> num_nodes >> num_drops) ||
      magic != "upn-faultplan" || (version != 1 && version != 2)) {
    fail(line_no,
         "bad header (expected 'upn-faultplan 1|2 <seed> <links> <nodes> <drops> [repairs]')");
  }
  if (version == 2 && !(header >> num_repairs)) {
    fail(line_no, "version 2 header is missing the repair count");
  }
  FaultPlan plan{seed};
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields{line};
    char kind = 0;
    fields >> kind;
    try {
      switch (kind) {
        case 'L': {
          LinkFault f;
          if (!(fields >> f.u >> f.v >> f.step)) fail(line_no, "malformed link fault");
          plan.add_link_fault(f);
          break;
        }
        case 'N': {
          NodeFault f;
          if (!(fields >> f.node >> f.step)) fail(line_no, "malformed node fault");
          plan.add_node_fault(f);
          break;
        }
        case 'D': {
          DropWindow w;
          if (!(fields >> w.u >> w.v >> w.begin >> w.end >> w.prob)) {
            fail(line_no, "malformed drop window");
          }
          plan.add_drop_window(w);
          break;
        }
        case 'R': {
          if (version < 2) fail(line_no, "repair records require a version 2 header");
          LinkRepair r;
          if (!(fields >> r.u >> r.v >> r.step)) fail(line_no, "malformed link repair");
          plan.add_link_repair(r);
          break;
        }
        default:
          fail(line_no, "unknown record kind");
      }
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
    std::string trailing;
    if (fields >> trailing) fail(line_no, "trailing garbage");
  }
  if (plan.link_faults().size() != num_links || plan.node_faults().size() != num_nodes ||
      plan.drop_windows().size() != num_drops || plan.link_repairs().size() != num_repairs) {
    fail(line_no, "record counts do not match header");
  }
  return plan;
}

}  // namespace upn
