// Textual (de)serialization of pebble-game protocols.
//
// Format (line-oriented, whitespace-separated):
//   upn-protocol 1 <n> <m> <T>
//   step
//   G <proc> <node> <time>
//   S <proc> <node> <time> <partner>
//   R <proc> <node> <time> <partner>
//   ...
// One `step` line per host time step (possibly with no ops).  Lets
// protocols be stored, diffed, and replayed by external tooling.
#pragma once

#include <iosfwd>

#include "src/pebble/protocol.hpp"

namespace upn {

void write_protocol(std::ostream& os, const Protocol& protocol);

/// Parses a protocol; throws std::runtime_error with a line number on any
/// malformed input (including violations of one-op-per-processor).
[[nodiscard]] Protocol read_protocol(std::istream& is);

}  // namespace upn
