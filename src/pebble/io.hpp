// Textual (de)serialization of pebble-game protocols.
//
// Format (line-oriented, whitespace-separated):
//   upn-protocol 1 <n> <m> <T>
//   step
//   G <proc> <node> <time>
//   S <proc> <node> <time> <partner>
//   R <proc> <node> <time> <partner>
//   ...
// One `step` line per host time step (possibly with no ops).  Lets
// protocols be stored, diffed, and replayed by external tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "src/pebble/protocol.hpp"

namespace upn {

/// Hostile-input caps enforced by read_protocol.  Dimension caps bound the
/// allocation a forged header can force (proc_used_step_ is 4 bytes per
/// host); the length caps bound per-line work.
inline constexpr std::uint32_t kMaxProtocolDimension = 1u << 26;
inline constexpr std::size_t kMaxProtocolTokenLength = 32;
inline constexpr std::size_t kMaxProtocolLineLength = 4096;

void write_protocol(std::ostream& os, const Protocol& protocol);

/// Parses a protocol; throws std::runtime_error with a line number on any
/// malformed input: non-numeric or negative fields, counts overflowing
/// uint32_t, header dimensions above kMaxProtocolDimension, overlong lines
/// or tokens, missing fields, trailing garbage, partners out of range, and
/// violations of the one-op-per-processor rule.
[[nodiscard]] Protocol read_protocol(std::istream& is);

}  // namespace upn
