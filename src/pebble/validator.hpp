// Strict replay validation of simulation protocols against the rules of
// Section 3.1.  A protocol that validates is, by construction, a legal
// simulation in the paper's model -- the universal simulator's output is
// checked here rather than trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/pebble/protocol.hpp"
#include "src/topology/graph.hpp"
#include "src/util/par.hpp"

namespace upn {

struct ValidationResult {
  bool ok = false;
  std::string error;        ///< empty when ok
  std::uint64_t pebbles_generated = 0;
  std::uint64_t pebbles_sent = 0;
  std::uint64_t pebbles_received = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// Replays `protocol` against the guest and host topologies.  Checks, per
/// host step and processor:
///   * at most one operation (already enforced structurally);
///   * GENERATE (P_i, t): 1 <= t <= T and the processor holds (P_i, t-1)
///     and (P_j, t-1) for every guest neighbor j of i;
///   * SEND: the pebble is held and the partner is a host neighbor;
///   * RECEIVE: mirrored by a SEND of the same pebble from the partner in
///     the same step, and the partner is a host neighbor;
///   * termination: every final pebble (P_i, T) was generated somewhere.
[[nodiscard]] ValidationResult validate_protocol(const Protocol& protocol, const Graph& guest,
                                                 const Graph& host);

/// One unit of batch validation: a protocol replayed against its own guest
/// and host topologies (pointers must stay valid for the whole batch call).
struct ValidationJob {
  const Protocol* protocol = nullptr;
  const Graph* guest = nullptr;
  const Graph* host = nullptr;
};

/// Validates every job on the pool, one task per protocol.  Verdicts are
/// collected by job index, so the result vector (ok flags, error strings,
/// pebble counts) is byte-identical to validating the jobs serially in
/// order, for any pool size.
[[nodiscard]] std::vector<ValidationResult> validate_protocols(
    const std::vector<ValidationJob>& jobs, ThreadPool& pool);

}  // namespace upn
