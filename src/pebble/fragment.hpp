// Fragments (Definition 3.2) and the multiplicity bound (Lemma 3.3).
//
// A fragment (B, B', D) records, for a critical guest time t_0:
//   B_i  = Q_S(i, t_0)       -- the representatives of P_i,
//   b_i  in Q'_S(i, t_0)     -- one generator of (P_i, t_0 + 1),
//   D_i  = { i' : b_i in B_{i'} } -- guests whose configuration b_i holds.
//
// Lemma 3.3: the number of c-regular guests consistent with a fixed fragment
// is at most prod_i C(|D_i|, c/2) -- because Q_{b_i} must hold the t_0-
// configurations of all neighbors of P_i, so P_i's outgoing (Eulerian-
// oriented) edges all end inside D_i.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pebble/metrics.hpp"

namespace upn {

struct Fragment {
  std::uint32_t t0 = 0;
  std::vector<std::vector<std::uint32_t>> B;  ///< B_i, sorted processor ids
  std::vector<std::uint32_t> b;               ///< b_i (one generator each)
  std::vector<std::vector<std::uint32_t>> D;  ///< D_i, sorted guest ids

  /// Sum of |B_i| (bounded by q n k in the Main Lemma, part 2).
  [[nodiscard]] std::uint64_t total_b_size() const;
};

/// Extracts the fragment at t_0 choosing, for each i, the generator b_i
/// that minimizes |P(b_i, t_0)| (the best case for the Main Lemma's
/// property 3).  t_0 must satisfy 0 <= t_0 < T and every (P_i, t_0+1) must
/// have at least one generator; throws otherwise.
[[nodiscard]] Fragment extract_fragment(const ProtocolMetrics& metrics, std::uint32_t t0);

/// log2 of Lemma 3.3's multiplicity bound prod_i C(|D_i|, c/2).
[[nodiscard]] double log2_multiplicity_bound(const Fragment& fragment, std::uint32_t c);

/// How many i have |D_i| <= threshold (Main Lemma, property 3 counts the i
/// with |D_i| <= n / sqrt(m)).
[[nodiscard]] std::uint32_t count_small_d(const Fragment& fragment, double threshold);

}  // namespace upn
