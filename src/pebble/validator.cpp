#include "src/pebble/validator.hpp"

#include <unordered_set>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

/// Pebble key within one processor's holdings: node * (T+1) + time.
std::uint64_t key_of(const PebbleType& p, std::uint32_t guest_steps) noexcept {
  return static_cast<std::uint64_t>(p.node) * (guest_steps + 1) + p.time;
}

std::string describe(const Op& op) {
  const char* kind = op.kind == OpKind::kGenerate ? "generate"
                     : op.kind == OpKind::kSend   ? "send"
                                                  : "receive";
  return std::string{kind} + "(P" + std::to_string(op.pebble.node) + "," +
         std::to_string(op.pebble.time) + ") at proc " + std::to_string(op.proc);
}

}  // namespace

ValidationResult validate_protocol(const Protocol& protocol, const Graph& guest,  // upn-analyze-waive(hotpath-unchecked-entry: this IS the validator; every input is legal and yields a verdict)
                                   const Graph& host) {
  UPN_OBS_SPAN("pebble.validator.replay");
  UPN_OBS_COUNT("pebble.validator.validations", 1);
  ValidationResult result;
  // Every rejection funnels through here so the span/step context lands in
  // the message and the violation counter stays exact.
  auto fail = [&result](std::string why) -> ValidationResult& {
    UPN_OBS_COUNT("pebble.validator.violations", 1);
    result.error = std::move(why) + obs::context_suffix();
    return result;
  };
  if (guest.num_nodes() != protocol.num_guests() || host.num_nodes() != protocol.num_hosts()) {
    return fail("graph sizes do not match protocol header");
  }
  const std::uint32_t T = protocol.guest_steps();

  // holdings[q]: keys of pebbles processor q holds.  Time-0 pebbles are
  // implicitly held by everyone ("at the beginning, each processor of M
  // contains all the initial pebbles").
  std::vector<std::unordered_set<std::uint64_t>> holdings(protocol.num_hosts());
  auto holds = [&](std::uint32_t proc, const PebbleType& p) {
    return p.time == 0 || holdings[proc].count(key_of(p, T)) != 0;
  };

  std::vector<char> final_generated(protocol.num_guests(), 0);

  for (std::uint32_t step = 0; step < protocol.host_steps(); ++step) {
    UPN_OBS_STEP(step);
    const auto& ops = protocol.steps()[step];
    // First pass: verify sends (content must already be held).
    for (const Op& op : ops) {
      if (op.kind != OpKind::kSend) continue;
      if (!host.has_edge(op.proc, op.partner)) {
        return fail("step " + std::to_string(step) + ": " + describe(op) +
                    ": partner is not a host neighbor");
      }
      if (!holds(op.proc, op.pebble)) {
        return fail("step " + std::to_string(step) + ": " + describe(op) +
                    ": sender does not hold the pebble");
      }
      ++result.pebbles_sent;
    }
    // Second pass: receives and generates.
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kSend:
          break;
        case OpKind::kReceive: {
          if (!host.has_edge(op.proc, op.partner)) {
            return fail("step " + std::to_string(step) + ": " + describe(op) +
                        ": partner is not a host neighbor");
          }
          bool matched = false;
          for (const Op& other : ops) {
            if (other.kind == OpKind::kSend && other.proc == op.partner &&
                other.partner == op.proc && other.pebble == op.pebble) {
              matched = true;
              break;
            }
          }
          if (!matched) {
            return fail("step " + std::to_string(step) + ": " + describe(op) +
                        ": no matching send from partner");
          }
          holdings[op.proc].insert(key_of(op.pebble, T));
          ++result.pebbles_received;
          break;
        }
        case OpKind::kGenerate: {
          const std::uint32_t t = op.pebble.time;
          if (t == 0 || t > T) {
            return fail("step " + std::to_string(step) + ": " + describe(op) +
                        ": generated time out of range");
          }
          const PebbleType own{op.pebble.node, t - 1};
          if (!holds(op.proc, own)) {
            return fail("step " + std::to_string(step) + ": " + describe(op) +
                        ": missing own predecessor");
          }
          for (const NodeId j : guest.neighbors(op.pebble.node)) {
            if (!holds(op.proc, PebbleType{j, t - 1})) {
              return fail("step " + std::to_string(step) + ": " + describe(op) +
                          ": missing neighbor predecessor P" + std::to_string(j));
            }
          }
          holdings[op.proc].insert(key_of(op.pebble, T));
          if (t == T) final_generated[op.pebble.node] = 1;
          ++result.pebbles_generated;
          break;
        }
      }
    }
  }

  // For T = 0 the final pebbles ARE the initial pebbles, present by fiat.
  for (NodeId i = 0; T > 0 && i < protocol.num_guests(); ++i) {
    if (!final_generated[i]) {
      return fail("final pebble (P" + std::to_string(i) + "," + std::to_string(T) +
                  ") was never generated");
    }
  }
  result.ok = true;
  UPN_OBS_COUNT("pebble.validator.sends", result.pebbles_sent);
  UPN_OBS_COUNT("pebble.validator.receives", result.pebbles_received);
  UPN_OBS_COUNT("pebble.validator.generates", result.pebbles_generated);
  return result;
}

std::vector<ValidationResult> validate_protocols(const std::vector<ValidationJob>& jobs,
                                                 ThreadPool& pool) {
  return pool.parallel_map<ValidationResult>(jobs.size(), [&](std::size_t i) {
    const ValidationJob& job = jobs[i];
    UPN_REQUIRE(job.protocol != nullptr && job.guest != nullptr && job.host != nullptr,
                "validate_protocols: null job member");
    return validate_protocol(*job.protocol, *job.guest, *job.host);
  });
}

}  // namespace upn
