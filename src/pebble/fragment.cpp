#include "src/pebble/fragment.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/contracts.hpp"
#include "src/util/math.hpp"

namespace upn {

std::uint64_t Fragment::total_b_size() const {
  std::uint64_t total = 0;
  for (const auto& set : B) total += set.size();
  return total;
}

Fragment extract_fragment(const ProtocolMetrics& metrics, std::uint32_t t0) {
  const std::uint32_t n = metrics.num_guests();
  if (t0 >= metrics.guest_steps()) {
    throw std::out_of_range{"extract_fragment: t0 must be < T"};
  }
  Fragment fragment;
  fragment.t0 = t0;
  fragment.B.reserve(n);
  fragment.b.reserve(n);

  // P(j, t0) sizes: how many guests' t0-pebbles each processor holds.
  std::vector<std::uint32_t> load(metrics.num_hosts(), 0);
  for (NodeId i = 0; i < n; ++i) {
    for (const std::uint32_t j : metrics.representatives(i, t0)) ++load[j];
  }

  for (NodeId i = 0; i < n; ++i) {
    fragment.B.push_back(metrics.representatives(i, t0));
    const auto gens = metrics.generators(i, t0);
    if (gens.empty()) {
      throw std::invalid_argument{
          "extract_fragment: some (P_i, t0+1) has no generator at this t0"};
    }
    // Choose the generator holding the fewest t0-pebbles: the fragment with
    // the smallest D_i the protocol admits.
    std::uint32_t best = gens.front();
    for (const std::uint32_t g : gens) {
      if (load[g] < load[best]) best = g;
    }
    fragment.b.push_back(best);
  }

  // D_i = { i' : b_i in B_{i'} }.  Invert once: for each processor, the
  // sorted list of guests it represents at t0.
  std::vector<std::vector<std::uint32_t>> held_by(metrics.num_hosts());
  for (NodeId i = 0; i < n; ++i) {
    for (const std::uint32_t j : fragment.B[i]) held_by[j].push_back(i);
  }
  fragment.D.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    fragment.D.push_back(held_by[fragment.b[i]]);
  }
  UPN_ENSURE(fragment.B.size() == n && fragment.b.size() == n && fragment.D.size() == n,
             "a fragment has one (B_i, b_i, D_i) triple per guest");
  for (NodeId i = 0; i < n; ++i) {
    // Definition 3.2: b_i generated (P_i, t0+1), so b_i holds (P_i, t0) and
    // therefore appears in B_i -- hence i itself is in D_i.
    UPN_INVARIANT(std::binary_search(fragment.D[i].begin(), fragment.D[i].end(), i),
                  "D_i must contain i (b_i holds P_i's own t0-configuration)");
  }
  return fragment;
}

double log2_multiplicity_bound(const Fragment& fragment, std::uint32_t c) {
  UPN_REQUIRE(c >= 2 && c % 2 == 0,
              "Lemma 3.3 counts C(|D_i|, c/2) for even guest degree c >= 2");
  UPN_REQUIRE(fragment.D.size() == fragment.b.size(),
              "fragment must be fully populated before bounding multiplicity");
  double total = 0.0;
  for (const auto& d : fragment.D) {
    total += log2_binomial(static_cast<double>(d.size()), static_cast<double>(c) / 2.0);
  }
  return total;
}

std::uint32_t count_small_d(const Fragment& fragment, double threshold) {
  std::uint32_t count = 0;
  for (const auto& d : fragment.D) {
    if (static_cast<double>(d.size()) <= threshold) ++count;
  }
  return count;
}

}  // namespace upn
