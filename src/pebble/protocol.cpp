#include "src/pebble/protocol.hpp"

#include "src/util/contracts.hpp"

namespace upn {

Protocol::Protocol(std::uint32_t num_guests, std::uint32_t num_hosts,
                   std::uint32_t guest_steps)
    : num_guests_(num_guests),
      num_hosts_(num_hosts),
      guest_steps_(guest_steps),
      proc_used_step_(num_hosts, 0) {}

void Protocol::begin_step() { steps_.emplace_back(); }

void Protocol::add(const Op& op) {
  UPN_REQUIRE(!steps_.empty(), "Protocol::add: begin_step() first");
  if (steps_.empty()) return;  // log-and-continue mode: drop the op instead of UB
  if (op.proc >= num_hosts_) {
    throw std::out_of_range{"Protocol::add: host processor out of range"};
  }
  if (op.pebble.node >= num_guests_ || op.pebble.time > guest_steps_) {
    throw std::out_of_range{"Protocol::add: pebble type out of range"};
  }
  if (op.kind != OpKind::kGenerate && op.partner >= num_hosts_) {
    throw std::out_of_range{"Protocol::add: partner out of range"};
  }
  const auto current = static_cast<std::uint32_t>(steps_.size());
  UPN_REQUIRE(proc_used_step_[op.proc] != current,
              "Protocol::add: processor already acted this step (pebble-game legality: "
              "at most one operation per processor per host step)");
  proc_used_step_[op.proc] = current;
  steps_.back().push_back(op);
}

std::uint64_t Protocol::num_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& step : steps_) total += step.size();
  return total;
}

}  // namespace upn
