// The pebble-game simulation model of Section 3.1.
//
// A pebble of type (P_i, t) stands for the configuration of guest processor
// P_i at guest time t.  Initially every host processor holds all pebbles
// (P_1, 0), ..., (P_n, 0).  In every host time step every processor performs
// at most ONE of:
//
//   * GENERATE a pebble (P_i, t): allowed only if the processor holds
//     (P_i, t-1) and (P_j, t-1) for every guest neighbor P_j of P_i;
//   * SEND a copy of one held pebble to a neighboring host processor
//     (pebbles are never lost -- the sender keeps its copy);
//   * RECEIVE a pebble from a neighbor (at most one per step).
//
// After T' host steps, every final pebble (P_i, T) must have been generated
// somewhere.  A Protocol is the full listing of operations; the validator
// (validator.hpp) replays it against the guest and host graphs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Pebble type (P_i, t).
struct PebbleType {
  NodeId node = 0;      ///< i: guest processor index
  std::uint32_t time = 0;  ///< t: guest time step

  friend bool operator==(const PebbleType&, const PebbleType&) = default;
};

enum class OpKind : std::uint8_t { kGenerate, kSend, kReceive };

struct Op {
  OpKind kind = OpKind::kGenerate;
  std::uint32_t proc = 0;     ///< host processor performing the operation
  PebbleType pebble;          ///< the pebble generated / sent / received
  std::uint32_t partner = 0;  ///< send: receiver; receive: sender; else unused
};

/// A simulation protocol S: host steps, each a list of operations (at most
/// one per processor -- enforced at insertion).
class Protocol {
 public:
  Protocol(std::uint32_t num_guests, std::uint32_t num_hosts, std::uint32_t guest_steps);

  /// Opens a new host time step.
  void begin_step();

  /// Adds an operation to the current host step.
  void add(const Op& op);

  [[nodiscard]] std::uint32_t num_guests() const noexcept { return num_guests_; }
  [[nodiscard]] std::uint32_t num_hosts() const noexcept { return num_hosts_; }
  [[nodiscard]] std::uint32_t guest_steps() const noexcept { return guest_steps_; }
  /// T': number of host steps.
  [[nodiscard]] std::uint32_t host_steps() const noexcept {
    return static_cast<std::uint32_t>(steps_.size());
  }
  [[nodiscard]] const std::vector<std::vector<Op>>& steps() const noexcept { return steps_; }

  [[nodiscard]] std::uint64_t num_ops() const noexcept;

  /// Slowdown s = T' / T.
  [[nodiscard]] double slowdown() const noexcept {
    return guest_steps_ == 0 ? 0.0
                             : static_cast<double>(host_steps()) / guest_steps_;
  }

  /// Inefficiency k = s * m / n = T' m / (T n), Section 3.1.
  [[nodiscard]] double inefficiency() const noexcept {
    return num_guests_ == 0 ? 0.0 : slowdown() * num_hosts_ / num_guests_;
  }

 private:
  std::uint32_t num_guests_;
  std::uint32_t num_hosts_;
  std::uint32_t guest_steps_;
  std::vector<std::vector<Op>> steps_;
  std::vector<std::uint32_t> proc_used_step_;  ///< proc -> last step index + 1
};

}  // namespace upn
