// Operational statistics of a protocol: the library-surface view of how a
// simulation spends its host steps.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pebble/protocol.hpp"

namespace upn {

struct ProtocolStats {
  std::uint64_t generates = 0;
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t idle_slots = 0;     ///< processor-steps with no operation
  double utilization = 0.0;         ///< ops / (T' * m)
  std::uint32_t busiest_proc = 0;
  std::uint64_t busiest_proc_ops = 0;
  std::uint32_t laziest_proc = 0;
  std::uint64_t laziest_proc_ops = 0;
  /// Communication fraction: (sends + receives) / ops.
  double comm_fraction = 0.0;
};

[[nodiscard]] ProtocolStats protocol_stats(const Protocol& protocol);

}  // namespace upn
