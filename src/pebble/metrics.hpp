// Protocol metrics: the quantities the lower-bound proof reasons about.
//
// For a protocol S (Section 3.1/3.2):
//   Q_S(i, t)  -- representatives: processors holding a pebble (P_i, t) at
//                 the end of S;
//   Q'_S(i, t) -- generators: members of Q_S(i, t) that generate (P_i, t+1);
//   q_{i,t}    -- |Q_S(i, t)| (Definition 3.11: the weight of (P_i, t));
//   E_t(tau)   -- Definition 3.16: guests whose generating pebble (P_i, t)
//                 exists after tau host steps (via first_generation_step).
#pragma once

#include <cstdint>
#include <vector>

#include "src/pebble/protocol.hpp"

namespace upn {

/// Sentinel for "never generated".
inline constexpr std::uint32_t kNeverGenerated = 0xffffffffu;

class ProtocolMetrics {
 public:
  /// Replays the protocol once and indexes all sets.  The protocol is
  /// assumed valid (run validate_protocol first).
  explicit ProtocolMetrics(const Protocol& protocol);

  [[nodiscard]] std::uint32_t num_guests() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t num_hosts() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t guest_steps() const noexcept { return T_; }
  [[nodiscard]] std::uint32_t host_steps() const noexcept { return host_steps_; }

  /// k = T' m / (T n), Section 3.1.
  [[nodiscard]] double inefficiency() const noexcept {
    return (T_ == 0 || n_ == 0)
               ? 0.0
               : static_cast<double>(host_steps_) * m_ /
                     (static_cast<double>(T_) * n_);
  }

  /// Q_S(i, t): sorted processor ids holding (P_i, t) at the end.  For t = 0
  /// this is all processors (initial pebbles) and is returned as such.
  [[nodiscard]] std::vector<std::uint32_t> representatives(NodeId i, std::uint32_t t) const;

  /// q_{i,t} = |Q_S(i, t)|.
  [[nodiscard]] std::uint32_t weight(NodeId i, std::uint32_t t) const;

  /// Q'_S(i, t): sorted processors that generate (P_i, t+1) at some step.
  [[nodiscard]] std::vector<std::uint32_t> generators(NodeId i, std::uint32_t t) const;

  /// Earliest host step (1-based count of completed steps) after which a
  /// generated pebble (P_i, t) exists; kNeverGenerated if none.  For t = 0
  /// returns 0 (initial pebbles exist from the start).
  [[nodiscard]] std::uint32_t first_generation_step(NodeId i, std::uint32_t t) const;

  /// |E_t(tau)|, Definition 3.16.
  [[nodiscard]] std::uint32_t generating_count(std::uint32_t t, std::uint32_t tau) const;

  /// Sum over all i of q_{i,t}.
  [[nodiscard]] std::uint64_t total_weight_at(std::uint32_t t) const;

  /// Total pebbles placed (generated + received + initial are excluded):
  /// bounded by T' * m in the paper's counting.
  [[nodiscard]] std::uint64_t total_placements() const noexcept { return placements_; }

 private:
  [[nodiscard]] std::size_t index(NodeId i, std::uint32_t t) const noexcept {
    return static_cast<std::size_t>(t) * n_ + i;
  }

  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t T_;
  std::uint32_t host_steps_ = 0;
  std::uint64_t placements_ = 0;
  /// holders_[(t-1)*n + i] for t >= 1: sorted procs holding (P_i, t).
  std::vector<std::vector<std::uint32_t>> holders_;
  /// generators_[(t)*n + i] for t <= T-1: procs generating (P_i, t+1).
  std::vector<std::vector<std::uint32_t>> generators_;
  /// first_gen_[(t-1)*n + i]: earliest step count after which (P_i,t) exists.
  std::vector<std::uint32_t> first_gen_;
};

}  // namespace upn
