#include "src/pebble/stats.hpp"

namespace upn {

ProtocolStats protocol_stats(const Protocol& protocol) {
  ProtocolStats stats;
  std::vector<std::uint64_t> per_proc(protocol.num_hosts(), 0);
  for (const auto& step : protocol.steps()) {
    for (const Op& op : step) {
      switch (op.kind) {
        case OpKind::kGenerate:
          ++stats.generates;
          break;
        case OpKind::kSend:
          ++stats.sends;
          break;
        case OpKind::kReceive:
          ++stats.receives;
          break;
      }
      ++per_proc[op.proc];
    }
  }
  const std::uint64_t ops = stats.generates + stats.sends + stats.receives;
  const std::uint64_t slots =
      static_cast<std::uint64_t>(protocol.host_steps()) * protocol.num_hosts();
  stats.idle_slots = slots - ops;
  stats.utilization = slots == 0 ? 0.0 : static_cast<double>(ops) / static_cast<double>(slots);
  stats.comm_fraction =
      ops == 0 ? 0.0 : static_cast<double>(stats.sends + stats.receives) /
                           static_cast<double>(ops);
  stats.busiest_proc_ops = 0;
  stats.laziest_proc_ops = slots;  // larger than any possible count
  for (std::uint32_t q = 0; q < per_proc.size(); ++q) {
    if (per_proc[q] > stats.busiest_proc_ops) {
      stats.busiest_proc_ops = per_proc[q];
      stats.busiest_proc = q;
    }
    if (per_proc[q] < stats.laziest_proc_ops) {
      stats.laziest_proc_ops = per_proc[q];
      stats.laziest_proc = q;
    }
  }
  return stats;
}

}  // namespace upn
