#include "src/pebble/io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace upn {

void write_protocol(std::ostream& os, const Protocol& protocol) {
  os << "upn-protocol 1 " << protocol.num_guests() << ' ' << protocol.num_hosts() << ' '
     << protocol.guest_steps() << '\n';
  for (const auto& step : protocol.steps()) {
    os << "step\n";
    for (const Op& op : step) {
      switch (op.kind) {
        case OpKind::kGenerate:
          os << "G " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << '\n';
          break;
        case OpKind::kSend:
          os << "S " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << ' '
             << op.partner << '\n';
          break;
        case OpKind::kReceive:
          os << "R " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << ' '
             << op.partner << '\n';
          break;
      }
    }
  }
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_protocol: line " + std::to_string(line) + ": " + what};
}

/// Splits a line into whitespace-separated tokens, enforcing the per-token
/// length cap (a hostile input must not smuggle in megabyte "numbers").
std::vector<std::string> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::istringstream stream{line};
  std::string token;
  while (stream >> token) {
    if (token.size() > kMaxProtocolTokenLength) fail(line_no, "token too long");
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Strict uint32 parse: digits only (no sign, no hex), no overflow.
std::uint32_t parse_u32(const std::string& token, std::size_t line_no, const char* what) {
  if (token.empty()) fail(line_no, std::string{what} + ": empty field");
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail(line_no, std::string{what} + ": not a non-negative integer ('" + token + "')");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > std::numeric_limits<std::uint32_t>::max()) {
      fail(line_no, std::string{what} + ": overflows uint32_t ('" + token + "')");
    }
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Protocol read_protocol(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  if (line.size() > kMaxProtocolLineLength) fail(line_no, "line too long");
  const std::vector<std::string> header = tokenize(line, line_no);
  if (header.size() != 5 || header[0] != "upn-protocol" || header[1] != "1") {
    fail(line_no, "bad header (expected 'upn-protocol 1 <n> <m> <T>')");
  }
  const std::uint32_t n = parse_u32(header[2], line_no, "guest count");
  const std::uint32_t m = parse_u32(header[3], line_no, "host count");
  const std::uint32_t T = parse_u32(header[4], line_no, "guest steps");
  if (n > kMaxProtocolDimension || m > kMaxProtocolDimension || T > kMaxProtocolDimension) {
    fail(line_no, "header count exceeds limit");
  }
  Protocol protocol{n, m, T};
  bool in_step = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.size() > kMaxProtocolLineLength) fail(line_no, "line too long");
    if (line.empty()) continue;
    const std::vector<std::string> tokens = tokenize(line, line_no);
    if (tokens.empty()) continue;
    if (tokens[0] == "step") {
      if (tokens.size() != 1) fail(line_no, "trailing garbage after 'step'");
      protocol.begin_step();
      in_step = true;
      continue;
    }
    if (!in_step) fail(line_no, "operation before first 'step'");
    if (tokens[0].size() != 1) fail(line_no, "unknown op kind");
    Op op;
    std::size_t expected_fields = 0;
    switch (tokens[0][0]) {
      case 'G':
        op.kind = OpKind::kGenerate;
        expected_fields = 4;
        break;
      case 'S':
        op.kind = OpKind::kSend;
        expected_fields = 5;
        break;
      case 'R':
        op.kind = OpKind::kReceive;
        expected_fields = 5;
        break;
      default:
        fail(line_no, "unknown op kind");
    }
    if (tokens.size() < expected_fields) {
      fail(line_no, expected_fields == 4 ? "generate missing fields"
                                         : "send/receive missing partner");
    }
    if (tokens.size() > expected_fields) fail(line_no, "trailing garbage");
    op.proc = parse_u32(tokens[1], line_no, "processor");
    op.pebble.node = parse_u32(tokens[2], line_no, "pebble node");
    op.pebble.time = parse_u32(tokens[3], line_no, "pebble time");
    if (expected_fields == 5) {
      op.partner = parse_u32(tokens[4], line_no, "partner");
      if (op.partner >= m) fail(line_no, "partner out of range");
    }
    try {
      protocol.add(op);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }
  return protocol;
}

}  // namespace upn
