#include "src/pebble/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace upn {

void write_protocol(std::ostream& os, const Protocol& protocol) {
  os << "upn-protocol 1 " << protocol.num_guests() << ' ' << protocol.num_hosts() << ' '
     << protocol.guest_steps() << '\n';
  for (const auto& step : protocol.steps()) {
    os << "step\n";
    for (const Op& op : step) {
      switch (op.kind) {
        case OpKind::kGenerate:
          os << "G " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << '\n';
          break;
        case OpKind::kSend:
          os << "S " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << ' '
             << op.partner << '\n';
          break;
        case OpKind::kReceive:
          os << "R " << op.proc << ' ' << op.pebble.node << ' ' << op.pebble.time << ' '
             << op.partner << '\n';
          break;
      }
    }
  }
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error{"read_protocol: line " + std::to_string(line) + ": " + what};
}

}  // namespace

Protocol read_protocol(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++line_no;
  std::istringstream header{line};
  std::string magic;
  int version = 0;
  std::uint32_t n = 0, m = 0, T = 0;
  if (!(header >> magic >> version >> n >> m >> T) || magic != "upn-protocol" ||
      version != 1) {
    fail(line_no, "bad header (expected 'upn-protocol 1 <n> <m> <T>')");
  }
  Protocol protocol{n, m, T};
  bool in_step = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line == "step") {
      protocol.begin_step();
      in_step = true;
      continue;
    }
    if (!in_step) fail(line_no, "operation before first 'step'");
    std::istringstream fields{line};
    char kind = 0;
    Op op;
    fields >> kind >> op.proc >> op.pebble.node >> op.pebble.time;
    switch (kind) {
      case 'G':
        op.kind = OpKind::kGenerate;
        break;
      case 'S':
        op.kind = OpKind::kSend;
        if (!(fields >> op.partner)) fail(line_no, "send missing partner");
        break;
      case 'R':
        op.kind = OpKind::kReceive;
        if (!(fields >> op.partner)) fail(line_no, "receive missing partner");
        break;
      default:
        fail(line_no, "unknown op kind");
    }
    if (fields.fail()) fail(line_no, "malformed fields");
    try {
      protocol.add(op);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }
  return protocol;
}

}  // namespace upn
