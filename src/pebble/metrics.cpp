#include "src/pebble/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace upn {

ProtocolMetrics::ProtocolMetrics(const Protocol& protocol)
    : n_(protocol.num_guests()),
      m_(protocol.num_hosts()),
      T_(protocol.guest_steps()),
      host_steps_(protocol.host_steps()) {
  holders_.resize(static_cast<std::size_t>(T_) * n_);
  generators_.resize(static_cast<std::size_t>(T_) * n_);
  first_gen_.assign(static_cast<std::size_t>(T_) * n_, kNeverGenerated);

  for (std::uint32_t step = 0; step < protocol.host_steps(); ++step) {
    for (const Op& op : protocol.steps()[step]) {
      const PebbleType& p = op.pebble;
      switch (op.kind) {
        case OpKind::kSend:
          break;  // sender already holds it
        case OpKind::kReceive:
          if (p.time >= 1) {
            holders_[index(p.node, p.time - 1)].push_back(op.proc);
            ++placements_;
          }
          break;
        case OpKind::kGenerate: {
          if (p.time < 1 || p.time > T_) {
            throw std::out_of_range{"ProtocolMetrics: generated pebble time out of range"};
          }
          holders_[index(p.node, p.time - 1)].push_back(op.proc);
          ++placements_;
          generators_[index(p.node, p.time - 1)].push_back(op.proc);
          auto& first = first_gen_[index(p.node, p.time - 1)];
          first = std::min(first, step + 1);
          break;
        }
      }
    }
  }
  for (auto& list : holders_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto& list : generators_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

std::vector<std::uint32_t> ProtocolMetrics::representatives(NodeId i, std::uint32_t t) const {
  if (t == 0) {
    std::vector<std::uint32_t> all(m_);
    for (std::uint32_t q = 0; q < m_; ++q) all[q] = q;
    return all;
  }
  if (i >= n_ || t > T_) throw std::out_of_range{"representatives: out of range"};
  return holders_[index(i, t - 1)];
}

std::uint32_t ProtocolMetrics::weight(NodeId i, std::uint32_t t) const {
  if (t == 0) return m_;
  if (i >= n_ || t > T_) throw std::out_of_range{"weight: out of range"};
  return static_cast<std::uint32_t>(holders_[index(i, t - 1)].size());
}

std::vector<std::uint32_t> ProtocolMetrics::generators(NodeId i, std::uint32_t t) const {
  if (i >= n_ || t >= T_) throw std::out_of_range{"generators: out of range"};
  return generators_[index(i, t)];
}

std::uint32_t ProtocolMetrics::first_generation_step(NodeId i, std::uint32_t t) const {
  if (t == 0) return 0;
  if (i >= n_ || t > T_) throw std::out_of_range{"first_generation_step: out of range"};
  return first_gen_[index(i, t - 1)];
}

std::uint32_t ProtocolMetrics::generating_count(std::uint32_t t, std::uint32_t tau) const {
  std::uint32_t count = 0;
  for (NodeId i = 0; i < n_; ++i) {
    const std::uint32_t first = first_generation_step(i, t);
    if (first != kNeverGenerated && first <= tau) ++count;
  }
  return count;
}

std::uint64_t ProtocolMetrics::total_weight_at(std::uint32_t t) const {
  std::uint64_t total = 0;
  for (NodeId i = 0; i < n_; ++i) total += weight(i, t);
  return total;
}

}  // namespace upn
