#include "src/util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace upn {

namespace {

ContractMode initial_mode() noexcept {
  const char* env = std::getenv("UPN_CONTRACT_MODE");
  if (env == nullptr) return ContractMode::kThrow;
  if (std::strcmp(env, "abort") == 0) return ContractMode::kAbort;
  if (std::strcmp(env, "log") == 0) return ContractMode::kLog;
  return ContractMode::kThrow;
}

std::atomic<ContractMode>& mode_slot() noexcept {
  static std::atomic<ContractMode> mode{initial_mode()};
  return mode;
}

std::atomic<std::uint64_t>& violation_slot() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

std::atomic<ContractContextProvider>& context_provider_slot() noexcept {
  static std::atomic<ContractContextProvider> provider{nullptr};
  return provider;
}

const char* kind_name(ContractKind kind) noexcept {
  switch (kind) {
    case ContractKind::kRequire:
      return "UPN_REQUIRE";
    case ContractKind::kEnsure:
      return "UPN_ENSURE";
    case ContractKind::kInvariant:
      return "UPN_INVARIANT";
  }
  return "UPN_CONTRACT";
}

}  // namespace

ContractMode contract_mode() noexcept { return mode_slot().load(std::memory_order_relaxed); }

void set_contract_mode(ContractMode mode) noexcept {
  mode_slot().store(mode, std::memory_order_relaxed);
}

std::uint64_t contract_violation_count() noexcept {
  return violation_slot().load(std::memory_order_relaxed);
}

void reset_contract_violation_count() noexcept {
  violation_slot().store(0, std::memory_order_relaxed);
}

void set_contract_context_provider(ContractContextProvider provider) noexcept {
  context_provider_slot().store(provider, std::memory_order_relaxed);
}

namespace detail {

void contract_failed(ContractKind kind, const char* condition, const char* file, int line,
                     const std::string& message) {
  std::string what = std::string{kind_name(kind)} + " failed: " + condition + " at " + file +
                     ":" + std::to_string(line);
  if (!message.empty()) what += ": " + message;
  if (const ContractContextProvider provider =
          context_provider_slot().load(std::memory_order_relaxed)) {
    what += provider();
  }
  switch (contract_mode()) {
    case ContractMode::kThrow:
      throw ContractViolation{kind, what};
    case ContractMode::kAbort:
      std::fputs(what.c_str(), stderr);
      std::fputc('\n', stderr);
      std::abort();
    case ContractMode::kLog:
      violation_slot().fetch_add(1, std::memory_order_relaxed);
      std::fputs(what.c_str(), stderr);
      std::fputc('\n', stderr);
      break;
  }
}

}  // namespace detail
}  // namespace upn
