// Deterministic parallel execution: a small fixed-size thread pool.
//
// Every hot sweep in this laboratory -- (n, m) slowdown grids, batch
// protocol validation, the lower-bound census -- is embarrassingly parallel
// in exactly the sense the paper's simulation model exploits: independent
// guest steps and independent grid points.  ThreadPool runs such index
// spaces across a fixed set of worker threads while preserving the
// repository's determinism contract:
//
//  * results are collected BY INDEX (parallel_map writes slot i from task
//    i), so the reduced output is byte-identical to the serial path no
//    matter how many threads run or how the scheduler interleaves them;
//  * randomized tasks must NOT share an Rng (xoshiro state is mutable and
//    unsynchronized); drivers derive one independent sub-stream per task
//    with Rng::stream(seed, task_index) instead.
//
// A pool of size <= 1 executes inline on the caller with no threads and no
// locks -- that path IS the serial reference the differential tests compare
// against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace upn {

/// Lifetime introspection for a pool (satellite of the obs layer).  All
/// fields are recorded identically on the serial and pooled paths, so they
/// are thread-count-independent for a fixed call sequence.
struct ThreadPoolStats {
  std::uint64_t parallel_for_calls = 0;  ///< completed parallel_for invocations
  std::uint64_t tasks_run = 0;           ///< total task bodies executed
  std::uint64_t max_batch = 0;           ///< largest submitted batch (max queue depth)
  std::uint64_t pending = 0;             ///< tasks submitted but not yet joined
};

class ThreadPool {
 public:
  /// A pool that runs work on `num_threads` threads in total (the caller
  /// participates, so num_threads == 2 spawns one worker).  0 picks
  /// default_threads().  Pools of size <= 1 never spawn and run inline.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread.  Always >= 1.
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Runs body(0), ..., body(count - 1), blocking until all complete.
  /// Tasks run concurrently in unspecified order; the calling thread
  /// participates.  If any task throws, the exception thrown by the
  /// LOWEST-index failing task is rethrown after every task has finished
  /// (deterministic regardless of scheduling).  Reentrant calls from inside
  /// a task run inline on that task's thread.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into slot i of the result -- ordered,
  /// deterministic reduction.  T must be default-constructible.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t count, Fn&& fn) {
    std::vector<T> out(count);
    parallel_for(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Snapshot of this pool's lifetime statistics.  `pending` is 0 whenever
  /// no parallel_for is in flight -- tests/par_test.cpp asserts the queue
  /// drains back to zero after every call.
  [[nodiscard]] ThreadPoolStats stats() const noexcept;

  /// Pool width used when a size is not given explicitly: the UPN_THREADS
  /// environment variable when set to a positive integer, else 1 (serial).
  [[nodiscard]] static unsigned default_threads() noexcept;

 private:
  // One parallel_for invocation.  Heap-allocated and shared with workers so
  // a late-waking worker from a finished job can never touch a newer job's
  // counters or a destroyed stack frame.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors;  // slot per task, mostly null
    std::mutex mutex;
    std::condition_variable finished_cv;
    std::size_t done = 0;  // guarded by mutex
  };

  void worker_loop();
  static void run_tasks(Job& job);

  unsigned threads_ = 1;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> pending_{0};
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::shared_ptr<Job> job_;          // guarded by mutex_
  std::uint64_t generation_ = 0;      // guarded by mutex_
  bool stop_ = false;                 // guarded by mutex_
};

}  // namespace upn
