// Log-domain combinatorics and small integer helpers.
//
// The lower-bound counting of Section 3 (Lemmas 3.3, 3.5, 3.13 and
// Theorem 3.1) multiplies numbers like n^((c-12)/2 * n): far beyond any
// fixed-width float for interesting n.  All counting in src/lowerbound/ is
// therefore done in log2 domain via the helpers here; lgamma gives binomials
// with ~1e-14 relative error, which is irrelevant at the magnitudes reported.
#pragma once

#include <bit>
#include <cstdint>

namespace upn {

/// log2(x!) via lgamma.
[[nodiscard]] double log2_factorial(double x) noexcept;

/// log2 of the binomial coefficient C(n, k).  Returns -inf for k > n or k < 0.
[[nodiscard]] double log2_binomial(double n, double k) noexcept;

/// log2(2^a + 2^b) computed without overflow.
[[nodiscard]] double log2_add(double a, double b) noexcept;

/// Integer floor(log2(x)); x must be > 0.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// Integer ceil(log2(x)); x must be > 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : floor_log2(x - 1) + 1u;
}

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x (x must be >= 1 and representable).
[[nodiscard]] constexpr std::uint64_t next_power_of_two(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : (std::uint64_t{1} << ceil_log2(x));
}

/// Integer square root: floor(sqrt(x)).
[[nodiscard]] std::uint64_t isqrt(std::uint64_t x) noexcept;

/// Ceiling division for unsigned integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace upn
