// Tiny descriptive statistics for bench/experiment reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace upn {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  double median = 0;
};

/// Summary statistics (population stddev) of a sample.
[[nodiscard]] inline Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values.size() % 2 == 1
                 ? values[values.size() / 2]
                 : 0.5 * (values[values.size() / 2 - 1] + values[values.size() / 2]);
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

}  // namespace upn
