#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace upn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"Table: needs at least one column"};
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table: row width does not match header count"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell) const {
  std::ostringstream out;
  std::visit(
      [&](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, double>) {
          out << std::setprecision(precision_) << value;
        } else {
          out << value;
        }
      },
      cell);
  return std::move(out).str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rendered) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << (c + 1 == headers_.size() ? "\n" : ",");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << format_cell(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  }
}

std::string Table::cell_text(std::size_t row, std::size_t col) const {
  return format_cell(rows_.at(row).at(col));
}

}  // namespace upn
