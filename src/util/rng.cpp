#include "src/util/rng.hpp"

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 upn_uint128;
#endif

namespace upn {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = (*this)();
  upn_uint128 m = static_cast<upn_uint128>(x) * static_cast<upn_uint128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<upn_uint128>(x) * static_cast<upn_uint128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Portable rejection sampling.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x = (*this)();
  while (x >= limit) x = (*this)();
  return x % bound;
#endif
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) noexcept {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

}  // namespace upn
