// Minimal command-line flag parsing for the example binaries.
//
// Supports `--name value` and `--name=value`; anything else is rejected with
// a helpful message.  Examples stay dependency-free and uniform.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace upn {

class Cli {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, std::string fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Names that were provided but never queried; used to reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace upn
