// Console table / CSV emission used by benches and examples.
//
// Every experiment binary prints the same rows the paper's math predicts; the
// Table class keeps those rows aligned for humans and can mirror them to CSV
// for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace upn {

/// One table cell: string, integer, or floating point value.
using Cell = std::variant<std::string, std::int64_t, std::uint64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of significant digits for double cells (default 4).
  void set_precision(int digits) { precision_ = digits; }

  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Render with aligned columns, a header rule, and two-space gutters.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our content).
  void write_csv(std::ostream& os) const;

  /// Cell rendered as a string (for tests).
  [[nodiscard]] std::string cell_text(std::size_t row, std::size_t col) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace upn
