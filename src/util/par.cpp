#include "src/util/par.hpp"

#include <cstdlib>
#include <string>

#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"

namespace upn {

namespace {

// Reentrant parallel_for calls (a task spawning nested parallel work on the
// same pool) run inline: the flag marks threads currently executing tasks.
thread_local bool g_inside_pool_task = false;

}  // namespace

unsigned ThreadPool::default_threads() noexcept {
  const char* env = std::getenv("UPN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 1 || parsed > 4096) return 1;
  return static_cast<unsigned>(parsed);
}

ThreadPool::ThreadPool(unsigned num_threads)
    : threads_(num_threads == 0 ? default_threads() : num_threads) {
  if (threads_ < 1) threads_ = 1;
  workers_.reserve(threads_ - 1);
  for (unsigned t = 0; t + 1 < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_tasks(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    g_inside_pool_task = true;
    const std::uint64_t busy_start = obs::enabled() ? obs::now_ns() : 0;
    try {
      (*job.body)(i);
    } catch (...) {
      job.errors[i] = std::current_exception();
    }
    if (busy_start != 0) {
      // Wall-clock worker busy time: a kTiming metric, excluded from
      // deterministic snapshots.
      UPN_OBS_TIMING_ADD("util.par.busy_ns", obs::now_ns() - busy_start);
    }
    g_inside_pool_task = false;
    const std::lock_guard<std::mutex> lock{job.mutex};
    if (++job.done == job.count) job.finished_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job) run_tasks(*job);
  }
}

ThreadPoolStats ThreadPool::stats() const noexcept {
  ThreadPoolStats out;
  out.parallel_for_calls = calls_.load(std::memory_order_relaxed);
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.max_batch = max_batch_.load(std::memory_order_relaxed);
  out.pending = pending_.load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  // Stats are recorded identically on the serial and pooled paths (the max
  // batch is the SUBMITTED size, not an observed occupancy), so snapshots
  // stay thread-count-independent.
  pending_.fetch_add(count, std::memory_order_relaxed);
  {
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (count > seen &&
           !max_batch_.compare_exchange_weak(seen, count, std::memory_order_relaxed)) {
    }
  }
  UPN_OBS_COUNT("util.par.parallel_for_calls", 1);
  UPN_OBS_COUNT("util.par.tasks_run", count);
  UPN_OBS_GAUGE_MAX("util.par.max_batch", count);
  UPN_OBS_HIST("util.par.batch_size", count);

  struct StatsGuard {
    ThreadPool* pool;
    std::size_t count;
    ~StatsGuard() {
      pool->tasks_run_.fetch_add(count, std::memory_order_relaxed);
      pool->calls_.fetch_add(1, std::memory_order_relaxed);
      pool->pending_.fetch_sub(count, std::memory_order_relaxed);
    }
  } stats_guard{this, count};

  if (threads_ <= 1 || count == 1 || g_inside_pool_task) {
    // Serial reference path: inline, in index order, exceptions propagate
    // directly.  Byte-identical results are the contract, see header.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  job->errors.resize(count);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    UPN_REQUIRE(!stop_, "parallel_for on a destroyed pool");
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_tasks(*job);  // the caller is worker number `threads_`

  {
    std::unique_lock<std::mutex> lock{job->mutex};
    job->finished_cv.wait(lock, [&] { return job->done == job->count; });
  }
  {
    // Unpublish so idle workers never retain the job (and its stack-bound
    // body pointer) past this call.
    const std::lock_guard<std::mutex> lock{mutex_};
    if (job_ == job) job_.reset();
  }
  for (const std::exception_ptr& error : job->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace upn
