#include "src/util/math.hpp"

#include <cmath>
#include <limits>

namespace upn {

namespace {
constexpr double kLog2E = 1.4426950408889634074;  // log2(e)
}  // namespace

double log2_factorial(double x) noexcept {
  if (x < 0) return -std::numeric_limits<double>::infinity();
  // std::lgamma writes the process-global `signgam`, which is a data race
  // when pool workers evaluate counting bounds concurrently; use the
  // reentrant form where the platform has it.
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x + 1.0, &sign) * kLog2E;
#else
  return std::lgamma(x + 1.0) * kLog2E;
#endif
}

double log2_binomial(double n, double k) noexcept {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k);
}

double log2_add(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

std::uint64_t isqrt(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  if (r > 0xffffffffULL) r = 0xffffffffULL;  // floor(sqrt(2^64-1))
  // sqrt on doubles can be off by one ulp for large x; correct exactly.
  // Overflow-safe comparisons: r*r > x <=> r > x/r for r > 0.
  while (r > 0 && r > x / r) --r;
  while (r < 0xffffffffULL && (r + 1) <= x / (r + 1)) ++r;
  return r;
}

}  // namespace upn
