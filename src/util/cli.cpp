#include "src/util/cli.hpp"

#include <stdexcept>

namespace upn {

Cli::Cli(int argc, const char* const* argv) {
  if (argc < 1) throw std::invalid_argument{"Cli: empty argv"};
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument{"Cli: expected --name[=value], got '" + token + "'"};
    }
    token.erase(0, 2);
    if (const auto eq = token.find('='); eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name, std::string fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace upn
