// Deterministic, fast pseudo-random number generation for the whole library.
//
// All randomized algorithms in this repository (random regular graphs, Valiant
// routing, workload generation, ...) take an explicit Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that even
// low-entropy seeds (0, 1, 2, ...) yield well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace upn {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixing function (Stafford variant 13).  Used by the
/// synchronous computation model to derive deterministic "computations".
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: 256-bit state, period 2^256-1, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Lemire's multiply-shift with rejection.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle of a whole vector.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A uniformly random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n) noexcept;

  /// Derive an independent child generator (for per-experiment streams).
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

  /// Independent sub-stream for task `task_index` of a parallel region
  /// seeded with `seed`.  Rng state is mutable and unsynchronized, so a
  /// generator must NEVER be shared across ThreadPool tasks; parallel
  /// drivers give each task its own stream(seed, i) instead.  The mapping
  /// is a pure function of (seed, task_index), so results are independent
  /// of thread count and scheduling order -- pinned by determinism_test.
  [[nodiscard]] static constexpr Rng stream(std::uint64_t seed,
                                            std::uint64_t task_index) noexcept {
    return Rng{mix64(mix64(seed ^ 0x7061722d75706eULL) ^
                     mix64(task_index + 0x9e3779b97f4a7c15ULL))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace upn
