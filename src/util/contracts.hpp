// Project-wide contract macros: checked preconditions, postconditions, and
// invariants for the lower-bound machinery and the simulation pipeline.
//
// The machine-checkable artifacts this repository produces (pebble protocols,
// path schedules, embeddings) are only as trustworthy as the code that emits
// them, so the paper's side conditions -- degree bounds, congestion and
// dilation limits, pebble-game legality, balanced-embedding loads -- are
// encoded as executable contracts at the module boundaries:
//
//   UPN_REQUIRE(cond, msg)    precondition: the caller broke the API contract
//   UPN_ENSURE(cond, msg)     postcondition: this function computed nonsense
//   UPN_INVARIANT(cond, msg)  internal consistency mid-computation
//
// The message argument is optional and is only evaluated when the condition
// fails, so contracts on hot paths cost one predictable branch.
//
// Failure handling is a process-wide runtime mode (ContractMode):
//   kThrow (default)  throw upn::ContractViolation (derives std::logic_error)
//   kAbort            print the diagnostic to stderr and std::abort()
//   kLog              print to stderr, bump a counter, and continue
// The mode can be forced at startup with the environment variable
// UPN_CONTRACT_MODE=throw|abort|log.  Defining UPN_NDEBUG_CONTRACTS at
// compile time removes every check (the condition is not even evaluated).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace upn {

enum class ContractKind : std::uint8_t { kRequire, kEnsure, kInvariant };

enum class ContractMode : std::uint8_t { kThrow, kAbort, kLog };

/// Thrown (in ContractMode::kThrow) when a contract fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(ContractKind kind, std::string what)
      : std::logic_error(std::move(what)), kind_(kind) {}

  [[nodiscard]] ContractKind kind() const noexcept { return kind_; }

 private:
  ContractKind kind_;
};

/// Current process-wide failure mode (initialized from UPN_CONTRACT_MODE).
[[nodiscard]] ContractMode contract_mode() noexcept;
void set_contract_mode(ContractMode mode) noexcept;

/// Violations observed in ContractMode::kLog since process start (or the
/// last reset).  Lets tests and long-running sweeps assert "no contract
/// fired" without dying mid-run.
[[nodiscard]] std::uint64_t contract_violation_count() noexcept;
void reset_contract_violation_count() noexcept;

/// Optional context provider, appended to every contract diagnostic.  The
/// obs layer installs one that names the current span and step (" [in
/// sim.universal.route, step 12]") so a violation locates itself without
/// util depending on obs.  Returns "" for no context; pass nullptr to clear.
using ContractContextProvider = std::string (*)();
void set_contract_context_provider(ContractContextProvider provider) noexcept;

/// RAII mode switch for tests: restores the previous mode on scope exit.
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode) noexcept
      : previous_(contract_mode()) {
    set_contract_mode(mode);
  }
  ~ScopedContractMode() { set_contract_mode(previous_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode previous_;
};

namespace detail {

/// Dispatches a failed contract according to contract_mode().  Returns only
/// in ContractMode::kLog.
void contract_failed(ContractKind kind, const char* condition, const char* file, int line,
                     const std::string& message);

}  // namespace detail
}  // namespace upn

#ifndef UPN_NDEBUG_CONTRACTS

#define UPN_CONTRACT_IMPL_(kind, cond, ...)                                         \
  do {                                                                              \
    if (!(cond)) [[unlikely]] {                                                     \
      ::upn::detail::contract_failed((kind), #cond, __FILE__, __LINE__,             \
                                     ::std::string{__VA_ARGS__});                   \
    }                                                                               \
  } while (false)

#else  // UPN_NDEBUG_CONTRACTS: compiled out, condition left unevaluated.

#define UPN_CONTRACT_IMPL_(kind, cond, ...) \
  do {                                      \
    (void)sizeof((cond) ? 1 : 0);           \
  } while (false)

#endif

#define UPN_REQUIRE(cond, ...) \
  UPN_CONTRACT_IMPL_(::upn::ContractKind::kRequire, cond, __VA_ARGS__)
#define UPN_ENSURE(cond, ...) \
  UPN_CONTRACT_IMPL_(::upn::ContractKind::kEnsure, cond, __VA_ARGS__)
#define UPN_INVARIANT(cond, ...) \
  UPN_CONTRACT_IMPL_(::upn::ContractKind::kInvariant, cond, __VA_ARGS__)
