#include "src/compute/machine.hpp"

#include "src/util/rng.hpp"

namespace upn {

Config next_config(Config own, std::span<const Config> neighbor_configs) noexcept {
  std::uint64_t h = mix64(own ^ 0xa5a5a5a5a5a5a5a5ULL);
  std::uint64_t position = 1;
  for (const Config c : neighbor_configs) {
    h = mix64(h ^ (c + position * 0x9e3779b97f4a7c15ULL));
    ++position;
  }
  return h;
}

Config initial_config(std::uint64_t seed, NodeId node) noexcept {
  return mix64(seed ^ (static_cast<std::uint64_t>(node) + 0x0123456789abcdefULL));
}

SyncMachine::SyncMachine(const Graph& graph, std::uint64_t seed) : graph_(&graph) {
  configs_.resize(graph.num_nodes());
  scratch_.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) configs_[v] = initial_config(seed, v);
}

void SyncMachine::step() {
  std::vector<Config> neighbor_configs;
  neighbor_configs.reserve(graph_->max_degree());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    neighbor_configs.clear();
    for (const NodeId u : graph_->neighbors(v)) neighbor_configs.push_back(configs_[u]);
    scratch_[v] = next_config(configs_[v], neighbor_configs);
  }
  configs_.swap(scratch_);
  ++time_;
}

void SyncMachine::run(std::uint32_t steps) {
  for (std::uint32_t i = 0; i < steps; ++i) step();
}

std::uint64_t SyncMachine::digest() const noexcept {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (const Config c : configs_) h = mix64(h ^ c);
  return h;
}

std::vector<Config> run_reference(const Graph& graph, std::uint64_t seed, std::uint32_t steps) {
  SyncMachine machine{graph, seed};
  machine.run(steps);
  return machine.configs();
}

}  // namespace upn
