// The synchronous network computation model.
//
// Section 1 of the paper: processors P_1..P_n joined by a communication graph
// compute in lock-step; in one step every processor reads the configurations
// of its neighbors and moves to its next configuration.  (The pebble-game
// model of Section 3.1 charges exactly one host step per configuration
// transfer and one per next-configuration computation, matching this.)
//
// SyncMachine executes such a computation directly on the guest network and
// is the ground truth for every simulation in src/core/: a correct universal
// simulation must reproduce the exact same configurations.  Configurations
// are 64-bit values evolved by a fixed avalanche mixing function, so any
// simulation bug (wrong neighbor, stale round, dropped message) changes the
// final digest with overwhelming probability.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// One processor's configuration at one time step.
using Config = std::uint64_t;

/// The deterministic next-configuration function delta(own, neighbors).
/// `neighbor_configs` must be ordered by ascending neighbor node id; the
/// position-dependent mixing makes the function injective-ish in each input.
[[nodiscard]] Config next_config(Config own, std::span<const Config> neighbor_configs) noexcept;

/// The initial configuration of processor `node` under a seed.
[[nodiscard]] Config initial_config(std::uint64_t seed, NodeId node) noexcept;

/// Lock-step executor over a guest graph.
class SyncMachine {
 public:
  /// The graph must outlive the machine.
  SyncMachine(const Graph& graph, std::uint64_t seed);

  /// Advances all processors by one synchronous step.
  void step();

  /// Advances by `steps` synchronous steps.
  void run(std::uint32_t steps);

  [[nodiscard]] std::uint32_t time() const noexcept { return time_; }
  [[nodiscard]] Config config(NodeId node) const noexcept { return configs_[node]; }
  [[nodiscard]] const std::vector<Config>& configs() const noexcept { return configs_; }

  /// Order-sensitive digest of the full configuration vector; equal digests
  /// mean equal global configurations (up to 64-bit hash collisions).
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  const Graph* graph_;
  std::vector<Config> configs_;
  std::vector<Config> scratch_;
  std::uint32_t time_ = 0;
};

/// Convenience: run `steps` steps from `seed` and return the final configs.
[[nodiscard]] std::vector<Config> run_reference(const Graph& graph, std::uint64_t seed,
                                                std::uint32_t steps);

}  // namespace upn
