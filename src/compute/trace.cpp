#include "src/compute/trace.hpp"

#include <algorithm>

namespace upn {

Trace record_trace(const Graph& guest, std::uint64_t seed, std::uint32_t steps) {
  Trace trace;
  trace.seed = seed;
  SyncMachine machine{guest, seed};
  trace.step_digests.push_back(machine.digest());
  for (std::uint32_t t = 0; t < steps; ++t) {
    machine.step();
    trace.step_digests.push_back(machine.digest());
  }
  return trace;
}

std::optional<Divergence> find_divergence(const Graph& guest, std::uint64_t seed,
                                          std::uint32_t steps,
                                          const std::vector<Config>& candidate) {
  const std::vector<Config> reference = run_reference(guest, seed, steps);
  if (reference == candidate) return std::nullopt;
  Divergence divergence;
  divergence.step = steps;
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (v < candidate.size() && reference[v] != candidate[v]) {
      divergence.node = v;
      divergence.expected = reference[v];
      divergence.actual = candidate[v];
      break;
    }
  }
  return divergence;
}

std::optional<std::uint32_t> first_trace_difference(const Trace& a, const Trace& b) {
  const std::size_t overlap = std::min(a.step_digests.size(), b.step_digests.size());
  for (std::size_t t = 0; t < overlap; ++t) {
    if (a.step_digests[t] != b.step_digests[t]) {
      return static_cast<std::uint32_t>(t);
    }
  }
  return std::nullopt;
}

}  // namespace upn
