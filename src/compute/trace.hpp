// Execution traces: per-step digests of a guest computation, plus a
// divergence finder.  When a simulator disagrees with the reference, the
// trace pinpoints the FIRST guest step (and processor) where the two
// executions part ways -- turning "configs_match == false" into an
// actionable location.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/compute/machine.hpp"
#include "src/topology/graph.hpp"

namespace upn {

struct Trace {
  std::uint64_t seed = 0;
  std::vector<std::uint64_t> step_digests;  ///< digest after steps 0..T
};

/// Runs T steps and records the digest after every step (including step 0).
[[nodiscard]] Trace record_trace(const Graph& guest, std::uint64_t seed, std::uint32_t steps);

struct Divergence {
  std::uint32_t step = 0;  ///< first differing guest step
  NodeId node = 0;         ///< first differing processor at that step
  Config expected = 0;
  Config actual = 0;
};

/// Compares `candidate` configurations (claimed state after `steps` steps of
/// `guest` from `seed`) against the reference execution; nullopt if they
/// agree, otherwise the first difference.  To locate the step, the
/// reference is re-run with snapshots.
[[nodiscard]] std::optional<Divergence> find_divergence(const Graph& guest,
                                                        std::uint64_t seed,
                                                        std::uint32_t steps,
                                                        const std::vector<Config>& candidate);

/// First step at which two traces differ; nullopt if equal (compares the
/// overlapping prefix).
[[nodiscard]] std::optional<std::uint32_t> first_trace_difference(const Trace& a,
                                                                  const Trace& b);

}  // namespace upn
