#include "src/topology/expander.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {

namespace {

/// y = A x for the adjacency matrix of `graph`.
void adjacency_multiply(const Graph& graph, const std::vector<double>& x,
                        std::vector<double>& y) {
  const std::uint32_t n = graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    double sum = 0.0;
    for (const NodeId u : graph.neighbors(v)) sum += x[u];
    y[v] = sum;
  }
}

/// Removes the component along the all-ones vector and normalizes.
void deflate_and_normalize(std::vector<double>& x) {
  const auto n = static_cast<double>(x.size());
  double mean = 0.0;
  for (const double value : x) mean += value;
  mean /= n;
  double norm_sq = 0.0;
  for (double& value : x) {
    value -= mean;
    norm_sq += value * value;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > 0) {
    for (double& value : x) value /= norm;
  }
}

}  // namespace

double second_eigenvalue(const Graph& graph, std::uint32_t iterations, std::uint64_t seed) {
  const std::uint32_t n = graph.num_nodes();
  if (n < 2) return 0.0;
  Rng rng{seed};
  std::vector<double> x(n), y(n);
  for (double& value : x) value = rng.uniform() - 0.5;
  deflate_and_normalize(x);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    // Iterate on A^2 so both ends of the spectrum converge to |lambda|_max
    // within the deflated subspace.
    adjacency_multiply(graph, x, y);
    adjacency_multiply(graph, y, x);
    deflate_and_normalize(x);
  }
  // |lambda| from the A^2 Rayleigh quotient: x^T A^2 x = ||Ax||^2 with ||x||=1.
  adjacency_multiply(graph, x, y);
  double norm_sq = 0.0;
  for (const double value : y) norm_sq += value * value;
  return std::sqrt(norm_sq);
}

double tanner_beta(std::uint32_t degree, double lambda, double alpha) noexcept {
  const double d2 = static_cast<double>(degree) * degree;
  const double l2 = lambda * lambda;
  const double denom = l2 + (d2 - l2) * alpha;
  return denom <= 0 ? 0.0 : d2 / denom;
}

double sampled_vertex_expansion(const Graph& graph, double alpha, std::uint32_t trials,
                                Rng& rng) {
  const std::uint32_t n = graph.num_nodes();
  const auto max_size = static_cast<std::uint32_t>(alpha * n);
  if (max_size == 0 || n == 0) return 0.0;
  double worst = static_cast<double>(n);
  std::vector<char> in_set(n), seen(n);
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const auto target = static_cast<std::uint32_t>(rng.between(1, max_size));
    // Grow a random connected set: biased toward bad (low-expansion) sets,
    // which is what we want for a tight empirical estimate.
    std::fill(in_set.begin(), in_set.end(), 0);
    std::vector<NodeId> members, frontier;
    const auto start = static_cast<NodeId>(rng.below(n));
    members.push_back(start);
    in_set[start] = 1;
    frontier.push_back(start);
    while (members.size() < target && !frontier.empty()) {
      const auto pick = static_cast<std::size_t>(rng.below(frontier.size()));
      const NodeId v = frontier[pick];
      NodeId chosen = v;
      std::uint32_t options = 0;
      for (const NodeId u : graph.neighbors(v)) {
        if (!in_set[u] && rng.below(++options) == 0) chosen = u;
      }
      if (options == 0) {
        frontier[pick] = frontier.back();
        frontier.pop_back();
        continue;
      }
      in_set[chosen] = 1;
      members.push_back(chosen);
      frontier.push_back(chosen);
    }
    // |N(A)|: neighbors outside A.
    std::fill(seen.begin(), seen.end(), 0);
    std::uint32_t boundary = 0;
    for (const NodeId v : members) {
      for (const NodeId u : graph.neighbors(v)) {
        if (!in_set[u] && !seen[u]) {
          seen[u] = 1;
          ++boundary;
        }
      }
    }
    worst = std::min(worst, static_cast<double>(boundary) / static_cast<double>(members.size()));
  }
  return worst;
}

ExpanderCertificate verify_expander(const Graph& graph, double alpha,
                                    std::uint32_t iterations) {
  ExpanderCertificate cert;
  cert.alpha = alpha;
  std::uint32_t degree = 0;
  if (!is_regular(graph, &degree) || !is_connected(graph)) return cert;
  cert.lambda = second_eigenvalue(graph, iterations);
  cert.beta = tanner_beta(degree, cert.lambda, alpha);
  cert.valid = cert.beta > 1.0;
  return cert;
}

Graph make_random_expander(std::uint32_t n, Rng& rng, double alpha, std::uint32_t max_tries) {
  for (std::uint32_t attempt = 0; attempt < max_tries; ++attempt) {
    Graph candidate = make_random_regular(n, 4, rng);
    const ExpanderCertificate cert = verify_expander(candidate, alpha);
    if (cert.valid) return candidate;
  }
  throw std::runtime_error{"make_random_expander: no attempt produced a certified expander"};
}

Graph make_margulis_expander(std::uint32_t k) {
  if (k < 2) throw std::invalid_argument{"make_margulis_expander: k >= 2"};
  const std::uint32_t n = k * k;
  auto id = [k](std::uint32_t x, std::uint32_t y) { return y * k + x; };
  GraphBuilder builder{n, "margulis(" + std::to_string(k) + ")"};
  for (std::uint32_t y = 0; y < k; ++y) {
    for (std::uint32_t x = 0; x < k; ++x) {
      const NodeId v = id(x, y);
      builder.add_edge(v, id((x + y) % k, y));          // S1
      builder.add_edge(v, id((x + y + 1) % k, y));      // S2
      builder.add_edge(v, id(x, (y + x) % k));          // T1
      builder.add_edge(v, id(x, (y + x + 1) % k));      // T2
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
