// Elementary topology builders: path, cycle, complete graph, complete binary
// tree.  The richer families (meshes, tori, butterflies, expanders, G_0) live
// in their own headers in this module.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Path P_n: 0 - 1 - ... - n-1.
[[nodiscard]] Graph make_path(std::uint32_t n);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph make_cycle(std::uint32_t n);

/// Complete graph K_n.  The "complete network" whose oblivious computations
/// Section 1 discusses as an alternative guest class.
[[nodiscard]] Graph make_complete(std::uint32_t n);

/// Complete binary tree with `levels` levels (2^levels - 1 nodes), root 0.
[[nodiscard]] Graph make_complete_binary_tree(std::uint32_t levels);

}  // namespace upn
