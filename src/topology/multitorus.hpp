// The (a, n)-multitorus of Definition 3.8.
//
// Start from the n-torus (N x N with N = sqrt(n)), then extend every aligned
// a x a submesh by wraparound edges so each block becomes an a x a torus.
// The aligned blocks partition the vertex set; for G_0 (Definition 3.9) the
// paper uses a (2a, n)-multitorus and partitions it into these (4a^2)-tori
// T_1, ..., T_h.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.hpp"
#include "src/topology/mesh.hpp"

namespace upn {

/// Layout bookkeeping for an (a, n)-multitorus: which block each node is in.
struct MultitorusLayout {
  std::uint32_t side = 0;        ///< N = sqrt(n)
  std::uint32_t block_side = 0;  ///< a

  [[nodiscard]] Grid2D grid() const noexcept { return Grid2D{side, side}; }
  [[nodiscard]] std::uint32_t blocks_per_row() const noexcept { return side / block_side; }
  [[nodiscard]] std::uint32_t num_blocks() const noexcept {
    return blocks_per_row() * blocks_per_row();
  }
  [[nodiscard]] std::uint32_t block_of(NodeId v) const noexcept;

  /// Nodes of block b in row-major order of their in-block coordinates.
  [[nodiscard]] std::vector<NodeId> block_nodes(std::uint32_t b) const;

  /// In-block coordinates (x, y) of node v, both in [0, block_side).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> local_coords(NodeId v) const noexcept;
};

/// Builds the (block_side, n)-multitorus; n must be a perfect square whose
/// side is a positive multiple of block_side.
[[nodiscard]] Graph make_multitorus(std::uint32_t n, std::uint32_t block_side);

/// The layout that accompanies make_multitorus(n, block_side).
[[nodiscard]] MultitorusLayout multitorus_layout(std::uint32_t n, std::uint32_t block_side);

}  // namespace upn
