#include "src/topology/ccc.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_cube_connected_cycles(std::uint32_t dimension) {
  if (dimension < 3 || dimension > 22) {
    throw std::invalid_argument{"make_cube_connected_cycles: dimension in [3, 22]"};
  }
  const CccLayout layout{dimension};
  GraphBuilder builder{layout.num_nodes(), "ccc(" + std::to_string(dimension) + ")"};
  const std::uint32_t corners = 1u << dimension;
  for (std::uint32_t corner = 0; corner < corners; ++corner) {
    for (std::uint32_t pos = 0; pos < dimension; ++pos) {
      // Cycle edge around the corner.
      builder.add_edge(layout.id(corner, pos), layout.id(corner, (pos + 1) % dimension));
      // Hypercube edge along dimension `pos`.
      builder.add_edge(layout.id(corner, pos), layout.id(corner ^ (1u << pos), pos));
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
