#include "src/topology/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/contracts.hpp"

namespace upn {

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

GraphBuilder::GraphBuilder(std::uint32_t num_nodes, std::string name)
    : num_nodes_(num_nodes), name_(std::move(name)) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range{"GraphBuilder::add_edge: node id out of range"};
  }
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph graph;
  graph.name_ = std::move(name_);
  graph.offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++graph.offsets_[u + 1];
    ++graph.offsets_[v + 1];
  }
  for (std::uint32_t i = 1; i <= num_nodes_; ++i) {
    graph.offsets_[i] += graph.offsets_[i - 1];
  }
  graph.adjacency_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(graph.offsets_.begin(), graph.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    graph.adjacency_[cursor[u]++] = v;
    graph.adjacency_[cursor[v]++] = u;
  }
  // Per-node adjacency is already sorted: edges were sorted as (min,max) pairs,
  // but the v->u back-edges arrive in u order, which is sorted too, and the
  // two runs interleave.  Sort each node's slice to be safe and canonical.
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(graph.adjacency_.begin() + graph.offsets_[v],
              graph.adjacency_.begin() + graph.offsets_[v + 1]);
  }
  UPN_ENSURE(graph.offsets_.back() == graph.adjacency_.size(),
             "CSR offsets must cover the adjacency array");
  UPN_ENSURE(graph.num_edges() == edges_.size(), "every deduplicated edge must be stored");
  UPN_ENSURE(std::is_sorted(graph.offsets_.begin(), graph.offsets_.end()),
             "CSR offsets must be monotone");
  return graph;
}

Graph graph_union(const Graph& a, const Graph& b, std::string name) {
  if (a.num_nodes() != b.num_nodes()) {
    throw std::invalid_argument{"graph_union: vertex sets differ"};
  }
  GraphBuilder builder{a.num_nodes(), std::move(name)};
  for (const auto& [u, v] : a.edge_list()) builder.add_edge(u, v);
  for (const auto& [u, v] : b.edge_list()) builder.add_edge(u, v);
  Graph result = std::move(builder).build();
  UPN_ENSURE(result.num_edges() >= a.num_edges() && result.num_edges() >= b.num_edges(),
             "a union contains both edge sets");
  return result;
}

Graph graph_difference(const Graph& a, const Graph& b, std::string name) {
  if (a.num_nodes() != b.num_nodes()) {
    throw std::invalid_argument{"graph_difference: vertex sets differ"};
  }
  GraphBuilder builder{a.num_nodes(), std::move(name)};
  for (const auto& [u, v] : a.edge_list()) {
    if (!b.has_edge(u, v)) builder.add_edge(u, v);
  }
  Graph result = std::move(builder).build();
  UPN_ENSURE(result.num_edges() <= a.num_edges(), "a difference cannot gain edges");
  return result;
}

}  // namespace upn
