#include "src/topology/parse.hpp"

#include <stdexcept>
#include <vector>

#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/ccc.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/kautz.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/multitorus.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/shuffle_exchange.hpp"
#include "src/topology/torus.hpp"
#include "src/topology/torus3d.hpp"
#include "src/util/rng.hpp"

namespace upn {

namespace {

/// Splits on ':' and, inside a field, on 'x' (for WxH forms).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    parts.push_back(text.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

std::uint32_t parse_u32(const std::string& field, const std::string& spec) {
  try {
    const unsigned long value = std::stoul(field);
    if (value > 0xffffffffUL) throw std::out_of_range{"too large"};
    return static_cast<std::uint32_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument{"make_topology: bad number '" + field + "' in '" + spec +
                                "'"};
  }
}

}  // namespace

Graph make_topology(const std::string& spec) {
  const auto parts = split(spec, ':');
  const std::string& family = parts.front();
  const std::size_t args = parts.size() - 1;
  auto need = [&](std::size_t count) {
    if (args != count) {
      throw std::invalid_argument{"make_topology: '" + family + "' expects " +
                                  std::to_string(count) + " parameter(s) in '" + spec + "'"};
    }
  };
  auto arg = [&](std::size_t i) { return parse_u32(parts[i + 1], spec); };

  if (family == "butterfly") {
    need(1);
    return make_butterfly(arg(0));
  }
  if (family == "wrapped_butterfly") {
    need(1);
    return make_wrapped_butterfly(arg(0));
  }
  if (family == "hypercube") {
    need(1);
    return make_hypercube(arg(0));
  }
  if (family == "ccc") {
    need(1);
    return make_cube_connected_cycles(arg(0));
  }
  if (family == "shuffle_exchange") {
    need(1);
    return make_shuffle_exchange(arg(0));
  }
  if (family == "debruijn") {
    need(1);
    return make_debruijn(arg(0));
  }
  if (family == "kautz") {
    need(1);
    return make_kautz(arg(0));
  }
  if (family == "mesh_of_trees") {
    need(1);
    return make_mesh_of_trees(arg(0));
  }
  if (family == "cycle") {
    need(1);
    return make_cycle(arg(0));
  }
  if (family == "path") {
    need(1);
    return make_path(arg(0));
  }
  if (family == "complete") {
    need(1);
    return make_complete(arg(0));
  }
  if (family == "binary_tree") {
    need(1);
    return make_complete_binary_tree(arg(0));
  }
  if (family == "margulis") {
    need(1);
    return make_margulis_expander(arg(0));
  }
  if (family == "mesh" || family == "torus") {
    need(1);
    const auto dims = split(parts[1], 'x');
    if (dims.size() != 2) {
      throw std::invalid_argument{"make_topology: '" + family + "' expects WxH in '" +
                                  spec + "'"};
    }
    const std::uint32_t w = parse_u32(dims[0], spec);
    const std::uint32_t h = parse_u32(dims[1], spec);
    return family == "mesh" ? make_mesh(w, h) : make_torus(w, h);
  }
  if (family == "torus3d") {
    need(1);
    const auto dims = split(parts[1], 'x');
    if (dims.size() != 3) {
      throw std::invalid_argument{"make_topology: 'torus3d' expects XxYxZ in '" + spec +
                                  "'"};
    }
    return make_torus3d(parse_u32(dims[0], spec), parse_u32(dims[1], spec),
                        parse_u32(dims[2], spec));
  }
  if (family == "multitorus") {
    need(2);
    return make_multitorus(arg(0), arg(1));
  }
  if (family == "random") {
    need(3);
    Rng rng{arg(2)};
    return make_random_regular(arg(0), arg(1), rng);
  }
  if (family == "expander") {
    need(2);
    Rng rng{arg(1)};
    return make_random_expander(arg(0), rng);
  }
  throw std::invalid_argument{"make_topology: unknown family '" + family + "' (" +
                              topology_spec_help() + ")"};
}

std::string topology_spec_help() {
  return "known specs: butterfly:d wrapped_butterfly:d hypercube:d ccc:d "
         "shuffle_exchange:d debruijn:d kautz:d mesh_of_trees:N cycle:n path:n "
         "complete:n binary_tree:levels margulis:k mesh:WxH torus:WxH "
         "torus3d:XxYxZ multitorus:n:a random:n:c:seed expander:n:seed";
}

}  // namespace upn
