#include "src/topology/debruijn.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_debruijn(std::uint32_t dimension) {
  if (dimension == 0 || dimension > 25) {
    throw std::invalid_argument{"make_debruijn: dimension in [1, 25]"};
  }
  const std::uint32_t n = 1u << dimension;
  GraphBuilder builder{n, "debruijn(" + std::to_string(dimension) + ")"};
  for (std::uint32_t v = 0; v < n; ++v) {
    builder.add_edge(v, (2 * v) % n);
    builder.add_edge(v, (2 * v + 1) % n);
  }
  return std::move(builder).build();
}

}  // namespace upn
