// Graphviz DOT emission for any Graph, for inspection and documentation.
#pragma once

#include <string>

#include "src/topology/graph.hpp"

namespace upn {

/// Undirected DOT rendering; the graph's name() becomes the graph id.
[[nodiscard]] std::string graph_to_dot(const Graph& graph);

}  // namespace upn
