#include "src/topology/mesh.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

namespace {
std::uint32_t abs_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return a > b ? a - b : b - a;
}
}  // namespace

std::uint32_t Grid2D::mesh_distance(NodeId u, NodeId v) const noexcept {
  return abs_diff(x_of(u), x_of(v)) + abs_diff(y_of(u), y_of(v));
}

std::uint32_t Grid2D::torus_distance(NodeId u, NodeId v) const noexcept {
  const std::uint32_t dx = abs_diff(x_of(u), x_of(v));
  const std::uint32_t dy = abs_diff(y_of(u), y_of(v));
  return std::min(dx, width - dx) + std::min(dy, height - dy);
}

Graph make_mesh(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument{"make_mesh: dimensions must be positive"};
  }
  const Grid2D grid{width, height};
  GraphBuilder builder{grid.num_nodes(),
                       "mesh(" + std::to_string(width) + "x" + std::to_string(height) + ")"};
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) builder.add_edge(grid.id(x, y), grid.id(x + 1, y));
      if (y + 1 < height) builder.add_edge(grid.id(x, y), grid.id(x, y + 1));
    }
  }
  return std::move(builder).build();
}

Graph make_square_mesh(std::uint32_t n) {
  const auto side = static_cast<std::uint32_t>(isqrt(n));
  if (side * side != n) {
    throw std::invalid_argument{"make_square_mesh: n must be a perfect square"};
  }
  return make_mesh(side, side);
}

}  // namespace upn
