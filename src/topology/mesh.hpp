// Two-dimensional meshes and the Grid2D coordinate helper.
//
// Definition 3.8 of the paper: the n-mesh is the graph on [N] x [N] with
// N = sqrt(n) whose edges connect nodes at L1-distance 1.  We generalize to
// width x height rectangles; the square case matches the paper.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Row-major indexing of a width x height grid of nodes.
struct Grid2D {
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  [[nodiscard]] constexpr std::uint32_t num_nodes() const noexcept { return width * height; }
  [[nodiscard]] constexpr NodeId id(std::uint32_t x, std::uint32_t y) const noexcept {
    return y * width + x;
  }
  [[nodiscard]] constexpr std::uint32_t x_of(NodeId v) const noexcept { return v % width; }
  [[nodiscard]] constexpr std::uint32_t y_of(NodeId v) const noexcept { return v / width; }

  /// L1 distance without wraparound (mesh metric).
  [[nodiscard]] std::uint32_t mesh_distance(NodeId u, NodeId v) const noexcept;

  /// L1 distance with wraparound in both dimensions (torus metric).
  [[nodiscard]] std::uint32_t torus_distance(NodeId u, NodeId v) const noexcept;
};

/// The width x height mesh.
[[nodiscard]] Graph make_mesh(std::uint32_t width, std::uint32_t height);

/// The paper's n-mesh: sqrt(n) x sqrt(n); n must be a perfect square.
[[nodiscard]] Graph make_square_mesh(std::uint32_t n);

}  // namespace upn
