#include "src/topology/properties.hpp"

#include <algorithm>
#include <queue>

#include "src/util/rng.hpp"

namespace upn {

std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source) {
  std::vector<std::uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId v : frontier) {
      for (const NodeId u : graph.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = level;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<NodeId> bfs_parents(const Graph& graph, NodeId source) {
  const std::uint32_t n = graph.num_nodes();
  std::vector<NodeId> parent(n, n);
  std::vector<NodeId> frontier{source};
  parent[source] = source;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const NodeId u : graph.neighbors(v)) {
        if (parent[u] == n) {
          parent[u] = v;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return parent;
}

bool is_connected(const Graph& graph) {
  if (graph.num_nodes() == 0) return true;
  const auto dist = bfs_distances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t connected_components(const Graph& graph, std::vector<std::uint32_t>* labels) {
  const std::uint32_t n = graph.num_nodes();
  std::vector<std::uint32_t> label(n, kUnreachable);
  std::uint32_t count = 0;
  std::vector<NodeId> stack;
  for (NodeId source = 0; source < n; ++source) {
    if (label[source] != kUnreachable) continue;
    label[source] = count;
    stack.push_back(source);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : graph.neighbors(v)) {
        if (label[u] == kUnreachable) {
          label[u] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  if (labels != nullptr) *labels = std::move(label);
  return count;
}

std::uint32_t largest_component_size(const Graph& graph) {
  std::vector<std::uint32_t> labels;
  const std::uint32_t count = connected_components(graph, &labels);
  std::vector<std::uint32_t> sizes(count, 0);
  for (const std::uint32_t c : labels) ++sizes[c];
  return sizes.empty() ? 0u : *std::max_element(sizes.begin(), sizes.end());
}

std::uint32_t min_degree(const Graph& graph) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::uint32_t d = graph.degree(v);
    if (v == 0 || d < best) best = d;
  }
  return best;
}

bool is_regular(const Graph& graph, std::uint32_t* degree) {
  if (graph.num_nodes() == 0) {
    if (degree != nullptr) *degree = 0;
    return true;
  }
  const std::uint32_t d0 = graph.degree(0);
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (graph.degree(v) != d0) return false;
  }
  if (degree != nullptr) *degree = d0;
  return true;
}

std::uint32_t eccentricity(const Graph& graph, NodeId source) {
  const auto dist = bfs_distances(graph, source);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& graph) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::uint32_t ecc = eccentricity(graph, v);
    if (ecc == kUnreachable) return kUnreachable;
    best = std::max(best, ecc);
  }
  return best;
}

std::uint32_t sampled_diameter(const Graph& graph, std::uint32_t samples, std::uint64_t seed) {
  if (graph.num_nodes() == 0) return 0;
  Rng rng{seed};
  std::uint32_t best = 0;
  for (std::uint32_t i = 0; i < samples; ++i) {
    const auto v = static_cast<NodeId>(rng.below(graph.num_nodes()));
    const std::uint32_t ecc = eccentricity(graph, v);
    if (ecc == kUnreachable) return kUnreachable;
    best = std::max(best, ecc);
  }
  return best;
}

std::vector<std::uint32_t> degree_histogram(const Graph& graph) {
  std::vector<std::uint32_t> histogram(graph.max_degree() + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) ++histogram[graph.degree(v)];
  return histogram;
}

std::uint32_t girth(const Graph& graph) {
  const std::uint32_t n = graph.num_nodes();
  std::uint32_t best = kUnreachable;
  std::vector<std::uint32_t> dist(n);
  std::vector<NodeId> parent(n);
  for (NodeId source = 0; source < n; ++source) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(parent.begin(), parent.end(), n);
    std::queue<NodeId> queue;
    dist[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (const NodeId u : graph.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = dist[v] + 1;
          parent[u] = v;
          queue.push(u);
        } else if (u != parent[v]) {
          // Non-tree edge: the shortest cycle through `source` touching it
          // has length dist[v] + dist[u] + 1.
          best = std::min(best, dist[v] + dist[u] + 1);
        }
      }
    }
  }
  return best;
}

}  // namespace upn
