// Cube-connected cycles: the hypercube with each degree-d corner replaced by
// a d-cycle.  Constant degree 3; one of the classic universal-network
// candidates cited in Section 1 (sorting-based universality via [5, 6]).
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// CCC node ids: (corner, position) -> corner * d + position.
struct CccLayout {
  std::uint32_t dimension = 0;
  [[nodiscard]] constexpr std::uint32_t num_nodes() const noexcept {
    return dimension << dimension;
  }
  [[nodiscard]] constexpr NodeId id(std::uint32_t corner, std::uint32_t pos) const noexcept {
    return corner * dimension + pos;
  }
  [[nodiscard]] constexpr std::uint32_t corner_of(NodeId v) const noexcept {
    return v / dimension;
  }
  [[nodiscard]] constexpr std::uint32_t pos_of(NodeId v) const noexcept {
    return v % dimension;
  }
};

[[nodiscard]] Graph make_cube_connected_cycles(std::uint32_t dimension);

}  // namespace upn
