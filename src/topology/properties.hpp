// Structural graph properties: connectivity, distances, regularity.
//
// Used throughout tests (every builder's invariants) and by the routing
// substrate (BFS next-hop tables) and the lower-bound machinery (torus
// diameters, spreading arguments).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Marker for unreachable nodes in distance vectors.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source);

/// BFS parent array from `source` (self-parent at source, kUnreachable -> n).
[[nodiscard]] std::vector<NodeId> bfs_parents(const Graph& graph, NodeId source);

[[nodiscard]] bool is_connected(const Graph& graph);

/// Connected components in BFS discovery order.  Writes the per-node
/// component index to *labels when non-null; returns the component count.
[[nodiscard]] std::uint32_t connected_components(const Graph& graph,
                                                 std::vector<std::uint32_t>* labels = nullptr);

/// Number of nodes in the largest connected component (0 for empty graphs).
[[nodiscard]] std::uint32_t largest_component_size(const Graph& graph);

/// Minimum degree over all nodes (0 for the empty graph).
[[nodiscard]] std::uint32_t min_degree(const Graph& graph);

/// True iff all degrees are equal; writes the common degree to *degree.
[[nodiscard]] bool is_regular(const Graph& graph, std::uint32_t* degree = nullptr);

/// Largest BFS eccentricity from `source`.
[[nodiscard]] std::uint32_t eccentricity(const Graph& graph, NodeId source);

/// Exact diameter via n BFS runs.  Intended for graphs up to a few thousand
/// nodes; returns kUnreachable for disconnected graphs.
[[nodiscard]] std::uint32_t diameter(const Graph& graph);

/// Lower bound on the diameter from `samples` random-source BFS runs.
[[nodiscard]] std::uint32_t sampled_diameter(const Graph& graph, std::uint32_t samples,
                                             std::uint64_t seed = 1);

/// Histogram of degrees: result[d] = number of nodes with degree d.
[[nodiscard]] std::vector<std::uint32_t> degree_histogram(const Graph& graph);

/// Length of a shortest cycle (kUnreachable for forests).  BFS from every
/// node; O(n * m) -- intended for the library's moderate graph sizes.
[[nodiscard]] std::uint32_t girth(const Graph& graph);

}  // namespace upn
