// The Kautz graph K(2, d): vertices are length-(d+1) strings over {0,1,2}
// with no two consecutive symbols equal; edges follow shift-append (both
// directions).  (2+1) * 2^d vertices, degree <= 4, diameter d+1 -- the
// densest known family at degree 4 and a strong universal-host candidate
// alongside de Bruijn.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Number of vertices of K(2, d): 3 * 2^d.
[[nodiscard]] constexpr std::uint32_t kautz_size(std::uint32_t d) noexcept {
  return 3u << d;
}

[[nodiscard]] Graph make_kautz(std::uint32_t d);

}  // namespace upn
