#include "src/topology/g0.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

std::uint32_t g0_block_parameter(std::uint32_t host_size) noexcept {
  if (host_size < 2) return 2;
  const double a = std::sqrt(std::log2(static_cast<double>(host_size)));
  return std::max(2u, static_cast<std::uint32_t>(std::ceil(a)));
}

std::uint32_t g0_round_guest_size(std::uint32_t n_hint, std::uint32_t a) noexcept {
  const std::uint32_t block = 2 * a;
  auto hint_side = static_cast<std::uint32_t>(isqrt(n_hint));
  if (hint_side * hint_side < n_hint) ++hint_side;
  const auto multiples = std::max<std::uint32_t>(
      1u, static_cast<std::uint32_t>(ceil_div(hint_side, block)));
  const std::uint32_t side = multiples * block;
  return side * side;
}

G0 make_g0(std::uint32_t n, std::uint32_t host_size, Rng& rng, double alpha) {
  const std::uint32_t a = g0_block_parameter(host_size);
  const std::uint32_t block = 2 * a;
  const auto side = static_cast<std::uint32_t>(isqrt(n));
  if (side * side != n || side % block != 0) {
    throw std::invalid_argument{
        "make_g0: n must be a perfect square with side divisible by 2a; "
        "use g0_round_guest_size"};
  }
  G0 result;
  result.a = a;
  result.host_size = host_size;
  result.layout = multitorus_layout(n, block);
  result.multitorus = make_multitorus(n, block);
  Graph expander = make_random_expander(n, rng, alpha);
  result.expander = verify_expander(expander, alpha);
  result.graph = graph_union(result.multitorus, expander,
                             "g0(n=" + std::to_string(n) + ",a=" + std::to_string(a) + ")");
  return result;
}

}  // namespace upn
