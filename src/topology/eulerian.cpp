#include "src/topology/eulerian.hpp"

#include <stdexcept>

namespace upn {

std::vector<std::pair<NodeId, NodeId>> eulerian_orientation(const Graph& graph) {
  const std::uint32_t n = graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (graph.degree(v) % 2 != 0) {
      throw std::invalid_argument{"eulerian_orientation: all degrees must be even"};
    }
  }
  // Adjacency as mutable half-edge lists; `used` marks consumed half-edges.
  // Edge ids: position in the flattened adjacency of the smaller endpoint.
  const auto edges = graph.edge_list();
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> adj(n);  // (other, edge id)
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].first].emplace_back(edges[e].second, e);
    adj[edges[e].second].emplace_back(edges[e].first, e);
  }
  std::vector<char> used(edges.size(), 0);
  std::vector<std::uint32_t> cursor(n, 0);
  std::vector<std::pair<NodeId, NodeId>> oriented;
  oriented.reserve(edges.size());

  // Hierholzer, iterative, once per connected component with edges.
  for (NodeId start = 0; start < n; ++start) {
    if (cursor[start] >= adj[start].size()) continue;
    std::vector<NodeId> stack{start};
    std::vector<NodeId> tour;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      while (cursor[v] < adj[v].size() && used[adj[v][cursor[v]].second]) ++cursor[v];
      if (cursor[v] == adj[v].size()) {
        tour.push_back(v);
        stack.pop_back();
      } else {
        const auto [next, edge_id] = adj[v][cursor[v]];
        used[edge_id] = 1;
        stack.push_back(next);
      }
    }
    // `tour` is the Euler circuit in reverse; orient along walk direction.
    for (std::size_t i = tour.size(); i > 1; --i) {
      oriented.emplace_back(tour[i - 1], tour[i - 2]);
    }
  }
  if (oriented.size() != edges.size()) {
    throw std::logic_error{"eulerian_orientation: tour did not cover all edges"};
  }
  return oriented;
}

std::vector<std::vector<NodeId>> eulerian_out_neighbors(const Graph& graph) {
  std::vector<std::vector<NodeId>> out(graph.num_nodes());
  for (const auto& [from, to] : eulerian_orientation(graph)) {
    out[from].push_back(to);
  }
  return out;
}

}  // namespace upn
