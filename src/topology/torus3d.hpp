// Three-dimensional tori: degree 6, diameter (x+y+z)/2, spreading exponent
// 3 -- the next rung on the polynomial-spreading ladder of [15] between 2D
// meshes and expanders.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Coordinates in an X x Y x Z grid, x-fastest.
struct Grid3D {
  std::uint32_t x = 0, y = 0, z = 0;
  [[nodiscard]] constexpr std::uint32_t num_nodes() const noexcept { return x * y * z; }
  [[nodiscard]] constexpr NodeId id(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept {
    return (k * y + j) * x + i;
  }
};

[[nodiscard]] Graph make_torus3d(std::uint32_t x, std::uint32_t y, std::uint32_t z);

}  // namespace upn
