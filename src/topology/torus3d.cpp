#include "src/topology/torus3d.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_torus3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  if (x == 0 || y == 0 || z == 0) {
    throw std::invalid_argument{"make_torus3d: dimensions must be positive"};
  }
  const Grid3D grid{x, y, z};
  GraphBuilder builder{grid.num_nodes(), "torus3d(" + std::to_string(x) + "x" +
                                             std::to_string(y) + "x" + std::to_string(z) +
                                             ")"};
  for (std::uint32_t k = 0; k < z; ++k) {
    for (std::uint32_t j = 0; j < y; ++j) {
      for (std::uint32_t i = 0; i < x; ++i) {
        builder.add_edge(grid.id(i, j, k), grid.id((i + 1) % x, j, k));
        builder.add_edge(grid.id(i, j, k), grid.id(i, (j + 1) % y, k));
        builder.add_edge(grid.id(i, j, k), grid.id(i, j, (k + 1) % z));
      }
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
