#include "src/topology/kautz.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/contracts.hpp"

namespace upn {

namespace {

/// Enumerate the valid strings s_0 s_1 ... s_d (s_i in {0,1,2}, s_i !=
/// s_{i+1}) and index them 0..3*2^d-1: s_0 in {0,1,2} and each subsequent
/// symbol one of the 2 non-equal choices.
std::uint32_t index_of(const std::vector<std::uint8_t>& word) {
  std::uint32_t index = word[0];
  for (std::size_t i = 1; i < word.size(); ++i) {
    // The two legal successors of p in increasing order are lo < hi;
    // encode word[i] as the binary choice between them.
    const std::uint8_t p = word[i - 1];
    const std::uint8_t lo = (p == 0) ? 1 : 0;
    index = index * 2 + (word[i] == lo ? 0u : 1u);
  }
  return index;
}

std::vector<std::uint8_t> word_of(std::uint32_t index, std::uint32_t length) {
  std::vector<std::uint8_t> word(length);
  std::vector<std::uint32_t> digits(length);
  for (std::uint32_t i = length; i-- > 1;) {
    digits[i] = index % 2;
    index /= 2;
  }
  digits[0] = index;
  UPN_REQUIRE(digits[0] <= 2);
  word[0] = static_cast<std::uint8_t>(digits[0]);
  for (std::uint32_t i = 1; i < length; ++i) {
    const std::uint8_t p = word[i - 1];
    // The two legal successors in increasing order.
    const std::uint8_t lo = (p == 0) ? 1 : 0;
    const std::uint8_t hi = (p == 2) ? 1 : 2;
    word[i] = digits[i] == 0 ? lo : hi;
  }
  return word;
}

}  // namespace

Graph make_kautz(std::uint32_t d) {
  if (d == 0 || d > 24) throw std::invalid_argument{"make_kautz: d in [1, 24]"};
  const std::uint32_t length = d + 1;
  const std::uint32_t n = kautz_size(d);
  GraphBuilder builder{n, "kautz(" + std::to_string(d) + ")"};
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto word = word_of(v, length);
    // Shift left and append each legal symbol: s_1 .. s_d x.
    std::vector<std::uint8_t> next(word.begin() + 1, word.end());
    next.push_back(0);
    for (std::uint8_t x = 0; x < 3; ++x) {
      if (x == word.back()) continue;
      next.back() = x;
      builder.add_edge(v, index_of(next));
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
