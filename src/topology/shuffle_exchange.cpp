#include "src/topology/shuffle_exchange.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_shuffle_exchange(std::uint32_t dimension) {
  if (dimension == 0 || dimension > 25) {
    throw std::invalid_argument{"make_shuffle_exchange: dimension in [1, 25]"};
  }
  const std::uint32_t n = 1u << dimension;
  GraphBuilder builder{n, "shuffle_exchange(" + std::to_string(dimension) + ")"};
  for (std::uint32_t v = 0; v < n; ++v) {
    builder.add_edge(v, v ^ 1u);
    builder.add_edge(v, shuffle_word(v, dimension));
  }
  return std::move(builder).build();
}

}  // namespace upn
