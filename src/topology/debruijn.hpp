// The binary de Bruijn graph on 2^d nodes: v <-> (2v mod 2^d) and
// v <-> (2v+1 mod 2^d).  Degree <= 4, diameter d: the densest of the classic
// constant-degree hosts and a strong universal-network candidate.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

[[nodiscard]] Graph make_debruijn(std::uint32_t dimension);

}  // namespace upn
