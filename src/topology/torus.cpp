#include "src/topology/torus.hpp"

#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

Graph make_torus(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument{"make_torus: dimensions must be positive"};
  }
  const Grid2D grid{width, height};
  GraphBuilder builder{grid.num_nodes(),
                       "torus(" + std::to_string(width) + "x" + std::to_string(height) + ")"};
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      builder.add_edge(grid.id(x, y), grid.id((x + 1) % width, y));
      builder.add_edge(grid.id(x, y), grid.id(x, (y + 1) % height));
    }
  }
  return std::move(builder).build();
}

Graph make_square_torus(std::uint32_t n) {
  const auto side = static_cast<std::uint32_t>(isqrt(n));
  if (side * side != n) {
    throw std::invalid_argument{"make_square_torus: n must be a perfect square"};
  }
  return make_torus(side, side);
}

}  // namespace upn
