// Random and structured c-regular graphs: the guest class U'.
//
// The lower bound (Section 3) ranges over U', the class of 16-regular
// n-processor networks.  We generate uniform-ish random members via the
// configuration (pairing) model with local repair of self-loops and parallel
// edges -- the standard practical sampler; for degrees as high as 16 pure
// rejection would essentially never terminate.  The circulant graph is a
// deterministic fallback used in tests.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// Degree of the guest class U' in Section 3 of the paper.
inline constexpr std::uint32_t kGuestDegree = 16;

/// A random simple c-regular graph on n nodes (n*c even, c < n).
/// Pairing model plus endpoint-swap repair; throws if repair fails to
/// converge (practically impossible for c << n).
[[nodiscard]] Graph make_random_regular(std::uint32_t n, std::uint32_t c, Rng& rng);

/// The circulant graph C_n(1, 2, ..., c/2): v ~ v +- j (mod n).  Exactly
/// c-regular for even c with c/2 < n/2.
[[nodiscard]] Graph make_circulant(std::uint32_t n, std::uint32_t c);

/// A random member of U'[G_0]: the union of a given base graph (degree b)
/// and a random (c - b)-regular graph, repaired to avoid duplicating base
/// edges.  Max degree <= c; matches the planted-subgraph guests of the
/// lower-bound proof.
[[nodiscard]] Graph make_random_regular_with_subgraph(const Graph& base, std::uint32_t c,
                                                      Rng& rng);

}  // namespace upn
