#include "src/topology/multitorus.hpp"

#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

std::uint32_t MultitorusLayout::block_of(NodeId v) const noexcept {
  const Grid2D g = grid();
  const std::uint32_t bx = g.x_of(v) / block_side;
  const std::uint32_t by = g.y_of(v) / block_side;
  return by * blocks_per_row() + bx;
}

std::vector<NodeId> MultitorusLayout::block_nodes(std::uint32_t b) const {
  const Grid2D g = grid();
  const std::uint32_t bx = (b % blocks_per_row()) * block_side;
  const std::uint32_t by = (b / blocks_per_row()) * block_side;
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(block_side) * block_side);
  for (std::uint32_t y = 0; y < block_side; ++y) {
    for (std::uint32_t x = 0; x < block_side; ++x) {
      nodes.push_back(g.id(bx + x, by + y));
    }
  }
  return nodes;
}

std::pair<std::uint32_t, std::uint32_t> MultitorusLayout::local_coords(NodeId v) const noexcept {
  const Grid2D g = grid();
  return {g.x_of(v) % block_side, g.y_of(v) % block_side};
}

MultitorusLayout multitorus_layout(std::uint32_t n, std::uint32_t block_side) {
  const auto side = static_cast<std::uint32_t>(isqrt(n));
  if (side * side != n) {
    throw std::invalid_argument{"multitorus: n must be a perfect square"};
  }
  if (block_side == 0 || side % block_side != 0) {
    throw std::invalid_argument{"multitorus: sqrt(n) must be a multiple of block_side"};
  }
  return MultitorusLayout{side, block_side};
}

Graph make_multitorus(std::uint32_t n, std::uint32_t block_side) {
  const MultitorusLayout layout = multitorus_layout(n, block_side);
  const Grid2D grid = layout.grid();
  const std::uint32_t side = layout.side;
  GraphBuilder builder{n, "multitorus(a=" + std::to_string(block_side) +
                              ",n=" + std::to_string(n) + ")"};
  // Global n-torus edges.
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      builder.add_edge(grid.id(x, y), grid.id((x + 1) % side, y));
      builder.add_edge(grid.id(x, y), grid.id(x, (y + 1) % side));
    }
  }
  // Per-block wraparound edges turning each aligned a x a submesh into a torus.
  for (std::uint32_t b = 0; b < layout.num_blocks(); ++b) {
    const std::uint32_t bx = (b % layout.blocks_per_row()) * block_side;
    const std::uint32_t by = (b / layout.blocks_per_row()) * block_side;
    for (std::uint32_t i = 0; i < block_side; ++i) {
      builder.add_edge(grid.id(bx + i, by), grid.id(bx + i, by + block_side - 1));
      builder.add_edge(grid.id(bx, by + i), grid.id(bx + block_side - 1, by + i));
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
