// Eulerian orientation of even-degree graphs.
//
// Lemma 3.3 represents each c-regular guest as a directed graph where every
// node has c/2 incoming and c/2 outgoing edges, "obtained by walking along an
// Eulerian Tour".  eulerian_orientation() implements exactly that: Hierholzer
// per connected component, orienting each edge in traversal direction, which
// balances in/out degree at every vertex of even degree.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/topology/graph.hpp"

namespace upn {

/// Returns each edge of `graph` as an ordered (from, to) pair such that
/// out-degree == in-degree == degree/2 at every node.  Throws if any node has
/// odd degree.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> eulerian_orientation(const Graph& graph);

/// Out-neighbor lists of the Eulerian orientation, indexed by node.
[[nodiscard]] std::vector<std::vector<NodeId>> eulerian_out_neighbors(const Graph& graph);

}  // namespace upn
