#include "src/topology/mesh_of_trees.hpp"

#include <stdexcept>
#include <string>

#include "src/util/math.hpp"

namespace upn {

Graph make_mesh_of_trees(std::uint32_t side) {
  if (side < 2 || !is_power_of_two(side)) {
    throw std::invalid_argument{"make_mesh_of_trees: side must be a power of two >= 2"};
  }
  const MeshOfTreesLayout layout{side};
  GraphBuilder builder{layout.num_nodes(), "mesh_of_trees(" + std::to_string(side) + ")"};

  // One complete binary tree over `side` leaves; `internal(j)` names the
  // j-th internal node, `leaf(i)` the i-th leaf.  Internal nodes are a heap:
  // children of j are 2j+1 and 2j+2; when a child index reaches the internal
  // count, it wraps into the leaf range.
  const std::uint32_t internals = layout.internal_per_tree();
  auto add_tree = [&](auto&& internal, auto&& leaf) {
    for (std::uint32_t j = 0; j < internals; ++j) {
      for (const std::uint32_t child : {2 * j + 1, 2 * j + 2}) {
        if (child < internals) {
          builder.add_edge(internal(j), internal(child));
        } else {
          builder.add_edge(internal(j), leaf(child - internals));
        }
      }
    }
  };
  for (std::uint32_t y = 0; y < side; ++y) {
    add_tree([&](std::uint32_t j) { return layout.row_internal(y, j); },
             [&](std::uint32_t i) { return layout.grid_id(i, y); });
  }
  for (std::uint32_t x = 0; x < side; ++x) {
    add_tree([&](std::uint32_t j) { return layout.col_internal(x, j); },
             [&](std::uint32_t i) { return layout.grid_id(x, i); });
  }
  return std::move(builder).build();
}

}  // namespace upn
