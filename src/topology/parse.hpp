// Topology spec strings: build any network in the library from a compact
// textual description.  Used by the example/CLI tools so experiments can be
// described on the command line.
//
//   butterfly:4          wrapped_butterfly:4     hypercube:5
//   torus:8x8            mesh:8x4                multitorus:64:4
//   ccc:3                shuffle_exchange:5      debruijn:6
//   mesh_of_trees:4      cycle:12                path:9
//   complete:16          binary_tree:4           margulis:8
//   random:128:16:7      (n : degree : seed)
//   expander:256:7       (n : seed, certified 4-regular)
#pragma once

#include <string>

#include "src/topology/graph.hpp"

namespace upn {

/// Parses and builds; throws std::invalid_argument with a helpful message
/// on unknown families or malformed parameters.
[[nodiscard]] Graph make_topology(const std::string& spec);

/// One-line usage summary of every known spec form.
[[nodiscard]] std::string topology_spec_help();

}  // namespace upn
