// Expander graphs with *verified* expansion.
//
// Definition 3.8: G = (V, E) is an (alpha, beta)-expander if every A with
// |A| <= alpha |V| has |N(A)| >= beta |A|.  G_0 (Definition 3.9) plants a
// 4-regular (alpha, beta)-expander; Lemma 3.15 uses its expansion to force
// generating-pebble growth.  The paper assumes such expanders exist; we
// *construct* them (random 4-regular, or explicit Margulis-style degree 8)
// and *certify* the expansion with a spectral bound instead of assuming it:
//
//   Tanner's bound: in a d-regular graph with second-largest |eigenvalue|
//   lambda, every A with |A| = alpha' n satisfies
//       |N(A)| >= |A| * d^2 / (lambda^2 + (d^2 - lambda^2) alpha').
//
// Random 4-regular graphs have lambda ~ 2 sqrt(3) ~ 3.46 w.h.p., which gives
// beta > 1 for small alpha.  We measure lambda by power iteration.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// Second-largest absolute eigenvalue of the adjacency matrix of a connected
/// d-regular graph, estimated by power iteration on A deflated against the
/// all-ones eigenvector.  `iterations` trades accuracy for time.
[[nodiscard]] double second_eigenvalue(const Graph& graph, std::uint32_t iterations = 200,
                                       std::uint64_t seed = 1);

/// beta guaranteed by Tanner's bound for sets of size exactly alpha*n.
[[nodiscard]] double tanner_beta(std::uint32_t degree, double lambda, double alpha) noexcept;

/// Empirical vertex expansion: minimum |N(A)|/|A| over `trials` random
/// connected sets of size <= alpha*n.  An upper bound on the true expansion
/// (sampling can only find witnesses, not certify their absence).
[[nodiscard]] double sampled_vertex_expansion(const Graph& graph, double alpha,
                                              std::uint32_t trials, Rng& rng);

/// Spectral certificate produced by verify_expander().
struct ExpanderCertificate {
  double lambda = 0.0;   ///< measured second eigenvalue
  double alpha = 0.0;    ///< set-size fraction the certificate covers
  double beta = 0.0;     ///< guaranteed expansion via Tanner's bound
  bool valid = false;    ///< beta > 1 (true expansion) and graph connected
};

/// Certifies that `graph` (must be regular) is an (alpha, beta)-expander for
/// the returned beta.  valid == false if the spectral gap is too small.
[[nodiscard]] ExpanderCertificate verify_expander(const Graph& graph, double alpha,
                                                  std::uint32_t iterations = 200);

/// A random 4-regular graph, resampled (up to `max_tries`) until the spectral
/// certificate at `alpha` is valid.  Throws if no attempt certifies.
[[nodiscard]] Graph make_random_expander(std::uint32_t n, Rng& rng, double alpha = 0.1,
                                         std::uint32_t max_tries = 16);

/// Margulis-style explicit degree-8 expander on k*k nodes (Z_k x Z_k):
/// (x, y) ~ (x + y, y), (x - y, y), (x, y + x), (x, y - x),
///          (x + y + 1, y), (x - y - 1... ) -- we use the standard 4
/// generators and their inverses, all mod k.
[[nodiscard]] Graph make_margulis_expander(std::uint32_t k);

}  // namespace upn
