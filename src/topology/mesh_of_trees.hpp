// The N x N mesh of trees (cited via [1]: "Optimal emulation of meshes on
// meshes of trees").  N^2 grid nodes; every row and every column carries a
// complete binary tree over its N grid nodes (N - 1 internal nodes each).
// Constant degree (<= 3), diameter O(log N), strong routing properties --
// another classic host family for the universality experiments.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Node numbering for the mesh of trees on an N x N grid (N = 2^k):
///   grid node (x, y)            -> y*N + x                  (N^2 ids)
///   row-tree internal (y, j)    -> N^2 + y*(N-1) + j        (j in [0, N-1))
///   col-tree internal (x, j)    -> N^2 + N*(N-1) + x*(N-1) + j
/// Internal nodes form implicit heaps: node j's children are 2j+1, 2j+2 for
/// j < N/2 - 1... the last level's children are the grid nodes.
struct MeshOfTreesLayout {
  std::uint32_t side = 0;  ///< N, a power of two >= 2

  [[nodiscard]] constexpr std::uint32_t grid_nodes() const noexcept { return side * side; }
  [[nodiscard]] constexpr std::uint32_t internal_per_tree() const noexcept {
    return side - 1;
  }
  [[nodiscard]] constexpr std::uint32_t num_nodes() const noexcept {
    return grid_nodes() + 2 * side * internal_per_tree();
  }
  [[nodiscard]] constexpr NodeId grid_id(std::uint32_t x, std::uint32_t y) const noexcept {
    return y * side + x;
  }
  [[nodiscard]] constexpr NodeId row_internal(std::uint32_t y, std::uint32_t j) const noexcept {
    return grid_nodes() + y * internal_per_tree() + j;
  }
  [[nodiscard]] constexpr NodeId col_internal(std::uint32_t x, std::uint32_t j) const noexcept {
    return grid_nodes() + side * internal_per_tree() + x * internal_per_tree() + j;
  }
};

/// Builds the mesh of trees with side N (a power of two >= 2).
[[nodiscard]] Graph make_mesh_of_trees(std::uint32_t side);

}  // namespace upn
