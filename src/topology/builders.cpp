#include "src/topology/builders.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_path(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument{"make_path: n must be positive"};
  GraphBuilder builder{n, "path(" + std::to_string(n) + ")"};
  for (std::uint32_t v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Graph make_cycle(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument{"make_cycle: n must be >= 3"};
  GraphBuilder builder{n, "cycle(" + std::to_string(n) + ")"};
  for (std::uint32_t v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return std::move(builder).build();
}

Graph make_complete(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument{"make_complete: n must be positive"};
  GraphBuilder builder{n, "complete(" + std::to_string(n) + ")"};
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph make_complete_binary_tree(std::uint32_t levels) {
  if (levels == 0 || levels > 31) {
    throw std::invalid_argument{"make_complete_binary_tree: levels in [1, 31]"};
  }
  const std::uint32_t n = (1u << levels) - 1u;
  GraphBuilder builder{n, "binary_tree(" + std::to_string(levels) + ")"};
  for (std::uint32_t v = 1; v < n; ++v) builder.add_edge(v, (v - 1) / 2);
  return std::move(builder).build();
}

}  // namespace upn
