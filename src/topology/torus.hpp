// Two-dimensional tori (meshes with wraparound), Definition 3.8.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"
#include "src/topology/mesh.hpp"

namespace upn {

/// The width x height torus: mesh edges plus wraparound edges in both
/// dimensions.  For side <= 2 the wrap edge coincides with a mesh edge and is
/// deduplicated, so degree can drop below 4.
[[nodiscard]] Graph make_torus(std::uint32_t width, std::uint32_t height);

/// The paper's n-torus: sqrt(n) x sqrt(n); n must be a perfect square.
[[nodiscard]] Graph make_square_torus(std::uint32_t n);

}  // namespace upn
