#include "src/topology/random_regular.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

namespace upn {

namespace {

/// Canonical 64-bit key for an undirected edge.
std::uint64_t edge_key(NodeId u, NodeId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Pairing-model sampler with repair.  `forbidden` edges count as violations
/// too (used to avoid duplicating a planted subgraph's edges).
std::vector<std::pair<NodeId, NodeId>> sample_pairing(
    std::uint32_t n, std::uint32_t c, Rng& rng,
    const std::unordered_set<std::uint64_t>& forbidden) {
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * c);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 0; j < c; ++j) stubs.push_back(v);
  }
  rng.shuffle(stubs);

  const std::size_t num_pairs = stubs.size() / 2;
  auto endpoint = [&](std::size_t pair, int side) -> NodeId& {
    return stubs[2 * pair + static_cast<std::size_t>(side)];
  };

  std::unordered_set<std::uint64_t> used;
  used.reserve(num_pairs * 2);
  auto is_bad = [&](NodeId a, NodeId b) {
    return a == b || forbidden.count(edge_key(a, b)) != 0 || used.count(edge_key(a, b)) != 0;
  };

  // Repair loop: re-draw violating pairs by swapping an endpoint with a
  // random other pair.  Each swap keeps the degree sequence intact.
  const std::size_t max_attempts = 200 * num_pairs + 10000;
  std::size_t attempts = 0;
  for (std::size_t p = 0; p < num_pairs; ++p) {
    while (is_bad(endpoint(p, 0), endpoint(p, 1))) {
      if (++attempts > max_attempts) {
        throw std::runtime_error{"make_random_regular: repair failed to converge"};
      }
      const auto q = static_cast<std::size_t>(rng.below(num_pairs));
      if (q == p) continue;
      const int side = static_cast<int>(rng.below(2));
      // Only swap with an already-finalized pair if the swap keeps it valid.
      NodeId& mine = endpoint(p, 1);
      NodeId& theirs = endpoint(q, side);
      const NodeId their_other = endpoint(q, 1 - side);
      if (q < p) {
        used.erase(edge_key(theirs, their_other));
        if (is_bad(endpoint(p, 0), theirs) || is_bad(mine, their_other)) {
          used.insert(edge_key(theirs, their_other));  // roll back
          continue;
        }
        std::swap(mine, theirs);
        used.insert(edge_key(endpoint(q, 0), endpoint(q, 1)));
      } else {
        std::swap(mine, theirs);
      }
    }
    used.insert(edge_key(endpoint(p, 0), endpoint(p, 1)));
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    edges.emplace_back(endpoint(p, 0), endpoint(p, 1));
  }
  return edges;
}

}  // namespace

Graph make_random_regular(std::uint32_t n, std::uint32_t c, Rng& rng) {
  if (c >= n || (static_cast<std::uint64_t>(n) * c) % 2 != 0) {
    throw std::invalid_argument{"make_random_regular: need c < n and n*c even"};
  }
  const auto edges = sample_pairing(n, c, rng, {});
  GraphBuilder builder{n, "random_regular(n=" + std::to_string(n) +
                              ",c=" + std::to_string(c) + ")"};
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return std::move(builder).build();
}

Graph make_circulant(std::uint32_t n, std::uint32_t c) {
  if (c % 2 != 0 || c / 2 >= (n + 1) / 2) {
    throw std::invalid_argument{"make_circulant: need even c with c/2 < n/2"};
  }
  GraphBuilder builder{n, "circulant(n=" + std::to_string(n) + ",c=" + std::to_string(c) + ")"};
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= c / 2; ++j) builder.add_edge(v, (v + j) % n);
  }
  return std::move(builder).build();
}

Graph make_random_regular_with_subgraph(const Graph& base, std::uint32_t c, Rng& rng) {
  const std::uint32_t n = base.num_nodes();
  const std::uint32_t b = base.max_degree();
  if (c <= b) {
    throw std::invalid_argument{
        "make_random_regular_with_subgraph: c must exceed the base max degree"};
  }
  const std::uint32_t residual = c - b;
  if ((static_cast<std::uint64_t>(n) * residual) % 2 != 0) {
    throw std::invalid_argument{"make_random_regular_with_subgraph: n*(c-b) must be even"};
  }
  std::unordered_set<std::uint64_t> forbidden;
  for (const auto& [u, v] : base.edge_list()) forbidden.insert(edge_key(u, v));
  const auto edges = sample_pairing(n, residual, rng, forbidden);
  GraphBuilder builder{n, "planted(" + base.name() + ",c=" + std::to_string(c) + ")"};
  for (const auto& [u, v] : base.edge_list()) builder.add_edge(u, v);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return std::move(builder).build();
}

}  // namespace upn
