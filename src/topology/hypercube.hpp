// The d-dimensional hypercube (2^d nodes, degree d).  Not constant-degree as
// a family, but the classic substrate from which CCC / butterfly / shuffle-
// exchange derive, and a useful host in tests and benches.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

[[nodiscard]] Graph make_hypercube(std::uint32_t dimension);

}  // namespace upn
