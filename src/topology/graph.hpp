// Immutable undirected graph in compressed-sparse-row form.
//
// Every network in the paper -- guests G in U', the fixed subgraph G_0, and
// host networks M -- is a finite undirected graph whose vertices are
// processors and whose edges are communication links.  Graph stores the
// adjacency structure once, sorted, with O(1) degree and O(log deg) adjacency
// queries; all topology builders in this module produce Graph values.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace upn {

using NodeId = std::uint32_t;

/// An undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return offsets_.empty() ? 0u : static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return adjacency_.size() / 2; }

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Maximum degree over all nodes (0 for the empty graph).
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Neighbors of v in ascending order.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// Flat CSR row-offset array: size num_nodes()+1 (empty for the empty
  /// graph); offsets()[v] .. offsets()[v+1] delimits v's slice of
  /// adjacency().  Hot paths (the packet engine) cache the raw pointers
  /// once instead of constructing a neighbors() span per query.
  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept { return offsets_; }

  /// Flat concatenated adjacency array: size 2*num_edges(), ascending within
  /// each node's offsets() slice.  Each index is one directed link slot.
  [[nodiscard]] std::span<const NodeId> adjacency() const noexcept { return adjacency_; }

  /// True iff {u, v} is an edge.  O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Human-readable topology name set by the builder ("butterfly(4)", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// All edges as (u, v) pairs with u < v, lexicographically sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edge_list() const;

  friend class GraphBuilder;

 private:
  std::vector<std::uint32_t> offsets_;   // size num_nodes()+1
  std::vector<NodeId> adjacency_;        // size 2*num_edges(), sorted per node
  std::string name_;
};

/// Accumulates edges (duplicates and self-loops are dropped) and emits a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t num_nodes, std::string name = "graph");

  /// Adds undirected edge {u, v}.  Self-loops are silently ignored;
  /// duplicates are deduplicated at build() time.  Out-of-range ids throw.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return num_nodes_; }

  /// Consumes the builder and produces the immutable graph.
  [[nodiscard]] Graph build() &&;

 private:
  std::uint32_t num_nodes_;
  std::string name_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// The union of two graphs on the same vertex set (edge sets merged).
[[nodiscard]] Graph graph_union(const Graph& a, const Graph& b, std::string name);

/// The graph a with the edges of b removed (vertex sets must match).
[[nodiscard]] Graph graph_difference(const Graph& a, const Graph& b, std::string name);

}  // namespace upn
