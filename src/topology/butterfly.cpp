#include "src/topology/butterfly.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_butterfly(std::uint32_t dimension) {
  if (dimension == 0 || dimension > 25) {
    throw std::invalid_argument{"make_butterfly: dimension in [1, 25]"};
  }
  const ButterflyLayout layout{dimension, /*wrapped=*/false};
  GraphBuilder builder{layout.num_nodes(), "butterfly(" + std::to_string(dimension) + ")"};
  for (std::uint32_t level = 0; level < dimension; ++level) {
    for (std::uint32_t row = 0; row < layout.rows(); ++row) {
      builder.add_edge(layout.id(level, row), layout.id(level + 1, row));
      builder.add_edge(layout.id(level, row), layout.id(level + 1, row ^ (1u << level)));
    }
  }
  return std::move(builder).build();
}

Graph make_wrapped_butterfly(std::uint32_t dimension) {
  if (dimension == 0 || dimension > 25) {
    throw std::invalid_argument{"make_wrapped_butterfly: dimension in [1, 25]"};
  }
  const ButterflyLayout layout{dimension, /*wrapped=*/true};
  GraphBuilder builder{layout.num_nodes(),
                       "wrapped_butterfly(" + std::to_string(dimension) + ")"};
  for (std::uint32_t level = 0; level < dimension; ++level) {
    const std::uint32_t next = (level + 1) % dimension;
    for (std::uint32_t row = 0; row < layout.rows(); ++row) {
      builder.add_edge(layout.id(level, row), layout.id(next, row));
      builder.add_edge(layout.id(level, row), layout.id(next, row ^ (1u << level)));
    }
  }
  return std::move(builder).build();
}

std::uint32_t butterfly_dimension_for_size(std::uint32_t max_nodes) {
  std::uint32_t best = 0;
  for (std::uint32_t d = 1; d <= 25; ++d) {
    const std::uint64_t nodes = static_cast<std::uint64_t>(d + 1) << d;
    if (nodes <= max_nodes) best = d;
  }
  return best;
}

}  // namespace upn
