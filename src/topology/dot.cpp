#include "src/topology/dot.hpp"

#include <cctype>
#include <sstream>

namespace upn {

std::string graph_to_dot(const Graph& graph) {
  std::ostringstream out;
  std::string id = graph.name();
  for (char& c : id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')) c = '_';
  }
  out << "graph " << (id.empty() ? "g" : id) << " {\n  node [shape=point];\n";
  for (const auto& [u, v] : graph.edge_list()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace upn
