// The fixed subgraph G_0 of Definition 3.9.
//
// With a = sqrt(log m), G_0 on n nodes is the edge union of
//   E_1: a (2a, n)-multitorus, and
//   E_2: a 4-regular (alpha, beta)-expander,
// giving constant degree (the paper states 12; our multitorus realizes
// degree <= 6 per node, so max degree <= 10 -- strictly within the paper's
// budget).  G_0 is partitioned into h <= n / (4a^2) blocks T_1, ..., T_h,
// each a (4a^2)-torus (a 2a x 2a torus); Lemma 3.10 roots one dependency
// tree per block.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/expander.hpp"
#include "src/topology/graph.hpp"
#include "src/topology/multitorus.hpp"
#include "src/util/rng.hpp"

namespace upn {

/// G_0 together with the bookkeeping the lower-bound machinery needs.
struct G0 {
  Graph graph;                   ///< E_1 union E_2
  Graph multitorus;              ///< E_1 alone (dependency trees live here)
  MultitorusLayout layout;       ///< 2a x 2a block structure
  ExpanderCertificate expander;  ///< certificate for the planted E_2
  std::uint32_t a = 0;           ///< block half-side: blocks are 2a x 2a
  std::uint32_t host_size = 0;   ///< the m that a = sqrt(log m) refers to

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return graph.num_nodes(); }
  /// h: number of (4a^2)-torus blocks.
  [[nodiscard]] std::uint32_t num_blocks() const noexcept { return layout.num_blocks(); }
  /// The nodes of block T_j (j in [0, h)).
  [[nodiscard]] std::vector<NodeId> block(std::uint32_t j) const {
    return layout.block_nodes(j);
  }
};

/// The paper's a = ceil(sqrt(log2 m)), clamped to >= 2 so blocks are
/// non-degenerate.
[[nodiscard]] std::uint32_t g0_block_parameter(std::uint32_t host_size) noexcept;

/// Smallest valid guest size >= n_hint for the given a: a perfect square
/// whose side is a positive multiple of 2a (so n >= 4a^2).
[[nodiscard]] std::uint32_t g0_round_guest_size(std::uint32_t n_hint, std::uint32_t a) noexcept;

/// Builds G_0 for guests of size n against hosts of size host_size.
/// n must satisfy the divisibility constraints (use g0_round_guest_size).
[[nodiscard]] G0 make_g0(std::uint32_t n, std::uint32_t host_size, Rng& rng,
                         double alpha = 0.1);

}  // namespace upn
