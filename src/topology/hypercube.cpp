#include "src/topology/hypercube.hpp"

#include <stdexcept>
#include <string>

namespace upn {

Graph make_hypercube(std::uint32_t dimension) {
  if (dimension == 0 || dimension > 25) {
    throw std::invalid_argument{"make_hypercube: dimension in [1, 25]"};
  }
  const std::uint32_t n = 1u << dimension;
  GraphBuilder builder{n, "hypercube(" + std::to_string(dimension) + ")"};
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dimension; ++bit) {
      builder.add_edge(v, v ^ (1u << bit));
    }
  }
  return std::move(builder).build();
}

}  // namespace upn
