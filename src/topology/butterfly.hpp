// Butterfly networks.
//
// The d-dimensional (ordinary/unwrapped) butterfly has (d+1) * 2^d nodes
// (level, row) with level in [0, d] and row in [0, 2^d); its edges are the
// "straight" edges ((l, r), (l+1, r)) and the "cross" edges
// ((l, r), (l+1, r XOR 2^l)).  The wrapped butterfly identifies levels by
// connecting level d back to level 0 and has d * 2^d nodes.
//
// The butterfly is the paper's canonical small universal host: Theorem 2.1
// plus Waksman off-line routing makes a size-m butterfly n-universal with
// slowdown O((n/m) log m) for m <= n, which Section 3 proves optimal.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

/// Coordinate bookkeeping for butterfly node ids (row-major within a level).
struct ButterflyLayout {
  std::uint32_t dimension = 0;  ///< d
  bool wrapped = false;

  [[nodiscard]] constexpr std::uint32_t rows() const noexcept { return 1u << dimension; }
  [[nodiscard]] constexpr std::uint32_t levels() const noexcept {
    return wrapped ? dimension : dimension + 1;
  }
  [[nodiscard]] constexpr std::uint32_t num_nodes() const noexcept {
    return levels() * rows();
  }
  [[nodiscard]] constexpr NodeId id(std::uint32_t level, std::uint32_t row) const noexcept {
    return level * rows() + row;
  }
  [[nodiscard]] constexpr std::uint32_t level_of(NodeId v) const noexcept {
    return v / rows();
  }
  [[nodiscard]] constexpr std::uint32_t row_of(NodeId v) const noexcept { return v % rows(); }
};

/// The d-dimensional unwrapped butterfly ((d+1) 2^d nodes, degree <= 4).
[[nodiscard]] Graph make_butterfly(std::uint32_t dimension);

/// The d-dimensional wrapped butterfly (d 2^d nodes, degree 4 for d >= 3).
[[nodiscard]] Graph make_wrapped_butterfly(std::uint32_t dimension);

/// Largest dimension d such that the unwrapped butterfly has at most
/// max_nodes nodes; returns 0 if even d=1 does not fit (3 nodes minimum... d=1 has 4).
[[nodiscard]] std::uint32_t butterfly_dimension_for_size(std::uint32_t max_nodes);

}  // namespace upn
