// The shuffle-exchange network on 2^d nodes: exchange edges v <-> v XOR 1 and
// shuffle edges v <-> rotate-left(v).  Degree <= 3; cited in Section 1 as an
// n-universal network with slowdown O(log n (log log n)^2) via sorting.
#pragma once

#include <cstdint>

#include "src/topology/graph.hpp"

namespace upn {

[[nodiscard]] Graph make_shuffle_exchange(std::uint32_t dimension);

/// Left-rotation of a dimension-bit word (the "shuffle" permutation).
[[nodiscard]] constexpr std::uint32_t shuffle_word(std::uint32_t v,
                                                   std::uint32_t dimension) noexcept {
  const std::uint32_t mask = (dimension >= 32) ? ~0u : ((1u << dimension) - 1u);
  return ((v << 1) | (v >> (dimension - 1))) & mask;
}

}  // namespace upn
